(* ckpt-lint: config parser, per-rule fixtures, golden JSON, and the
   severity/allowlist machinery. The fixtures under lint_fixtures/lib/
   are parse-only inputs — they never compile and each bad_* file
   triggers exactly one rule, so a regression points at its rule. *)

module Config = Ckpt_analysis.Config
module Diagnostic = Ckpt_analysis.Diagnostic
module Driver = Ckpt_analysis.Driver
module Output = Ckpt_analysis.Output
module Rule = Ckpt_analysis.Rule
module Rules = Ckpt_analysis.Rules

let fixtures_root = "lint_fixtures"

let run ?(config = Config.default) paths =
  Driver.run ~config ~rules:Rules.all ~root:fixtures_root paths

let rules_hit diags =
  List.map (fun (d : Diagnostic.t) -> d.Diagnostic.rule) diags
  |> List.sort_uniq String.compare

(* --- config parser -------------------------------------------------- *)

let test_config_parse () =
  let config =
    Config.parse_string
      {|
# top comment
[lint]
roots = ["lib", "bin"]
exclude = [
  "test/lint_fixtures",  # trailing comment
]

[rule.banned-in-lib]
severity = "warning"
allow = ["lib/obs/sink.ml", "lib/experiments"]

[rule.no-wall-clock]
severity = "off"
|}
  in
  Alcotest.(check (list string)) "roots" [ "lib"; "bin" ] config.Config.roots;
  Alcotest.(check (list string)) "exclude" [ "test/lint_fixtures" ] config.Config.exclude;
  Alcotest.(check bool) "allow file"
    true
    (Config.allowed config ~rule:"banned-in-lib" "lib/obs/sink.ml");
  Alcotest.(check bool) "allow subtree"
    true
    (Config.allowed config ~rule:"banned-in-lib" "lib/experiments/common.ml");
  Alcotest.(check bool) "allow does not leak across rules"
    false
    (Config.allowed config ~rule:"no-global-random" "lib/obs/sink.ml");
  Alcotest.(check bool) "prefix match stops at '/' boundary"
    false
    (Config.allowed config ~rule:"banned-in-lib" "lib/obs/sink.ml.backup");
  (match Config.severity config ~rule:"banned-in-lib" ~default:Diagnostic.Error with
  | Some Diagnostic.Warning -> ()
  | _ -> Alcotest.fail "severity override to warning not applied");
  (match Config.severity config ~rule:"no-wall-clock" ~default:Diagnostic.Error with
  | None -> ()
  | Some _ -> Alcotest.fail "severity off should disable the rule");
  match Config.severity config ~rule:"no-global-random" ~default:Diagnostic.Error with
  | Some Diagnostic.Error -> ()
  | _ -> Alcotest.fail "unconfigured rule keeps its default severity"

let test_config_rejects () =
  let rejects label contents =
    match Config.parse_string contents with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail (label ^ ": expected a parse failure")
  in
  rejects "unknown section" "[surprise]\n";
  rejects "unknown key in [lint]" "[lint]\nroot = [\"lib\"]\n";
  rejects "unknown key in rule" "[rule.banned-in-lib]\nseverty = \"error\"\n";
  rejects "bad severity" "[rule.banned-in-lib]\nseverity = \"fatal\"\n";
  rejects "key outside section" "roots = [\"lib\"]\n";
  rejects "unterminated array" "[lint]\nroots = [\"lib\",\n"

(* --- per-rule fixtures ---------------------------------------------- *)

let check_rule rule ~bad ~bad_count ~good () =
  let bad_diags = run [ "lib/" ^ bad ] in
  Alcotest.(check int)
    (Printf.sprintf "%s finding count in %s" rule bad)
    bad_count (List.length bad_diags);
  Alcotest.(check (list string))
    (Printf.sprintf "only %s fires in %s" rule bad)
    [ rule ] (rules_hit bad_diags);
  Alcotest.(check int)
    (Printf.sprintf "%s is clean" good)
    0
    (List.length (run [ "lib/" ^ good ]))

let test_float_compare =
  check_rule "float-polymorphic-compare" ~bad:"bad_float_compare.ml" ~bad_count:3
    ~good:"good_float_compare.ml"

let test_wall_clock =
  check_rule "no-wall-clock" ~bad:"bad_wall_clock.ml" ~bad_count:2
    ~good:"good_wall_clock.ml"

let test_global_random =
  check_rule "no-global-random" ~bad:"bad_global_random.ml" ~bad_count:3
    ~good:"good_global_random.ml"

let test_global_mutable =
  check_rule "unguarded-global-mutable" ~bad:"bad_global_mutable.ml" ~bad_count:6
    ~good:"good_global_mutable.ml"

let test_span_scope =
  check_rule "span-scope-safety" ~bad:"bad_span_scope.ml" ~bad_count:2
    ~good:"good_span_scope.ml"

let test_gc_stat =
  check_rule "no-direct-gc-stat" ~bad:"bad_gc_stat.ml" ~bad_count:2
    ~good:"good_gc_stat.ml"

let test_banned =
  check_rule "banned-in-lib" ~bad:"bad_banned.ml" ~bad_count:5 ~good:"good_banned.ml"

let test_parse_error () =
  match run [ "lib/bad_parse_error.ml" ] with
  | [ d ] ->
      Alcotest.(check string) "rule" "parse-error" d.Diagnostic.rule;
      Alcotest.(check int) "line" 1 d.Diagnostic.line
  | diags ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one parse-error diagnostic, got %d"
           (List.length diags))

(* --- severity and allowlist machinery ------------------------------- *)

let test_allowlist_and_severity () =
  let config =
    Config.parse_string
      {|
[rule.banned-in-lib]
allow = ["lib/bad_banned.ml"]

[rule.span-scope-safety]
severity = "warning"

[rule.no-wall-clock]
severity = "off"
|}
  in
  Alcotest.(check int) "allowlisted file reports nothing"
    0
    (List.length (run ~config [ "lib/bad_banned.ml" ]));
  (match run ~config [ "lib/bad_span_scope.ml" ] with
  | [] -> Alcotest.fail "downgraded rule should still report"
  | diags ->
      Alcotest.(check bool) "downgraded to warnings"
        true
        (List.for_all
           (fun (d : Diagnostic.t) -> d.Diagnostic.severity = Diagnostic.Warning)
           diags);
      Alcotest.(check bool) "warnings are not errors" false (Driver.has_errors diags));
  Alcotest.(check int) "rule switched off reports nothing"
    0
    (List.length (run ~config [ "lib/bad_wall_clock.ml" ]))

let test_exclude () =
  let config = Config.parse_string "[lint]\nexclude = [\"lib\"]\n" in
  Alcotest.(check int) "excluded subtree yields no diagnostics"
    0
    (List.length (run ~config [ "lib" ]))

(* --- whole-tree golden ---------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden_json () =
  let diags = run [ "lib" ] in
  let got = Output.render ~format:Output.Json diags ^ "\n" in
  let expected = read_file (Filename.concat fixtures_root "expected.json") in
  Alcotest.(check string) "fixture tree JSON matches the golden file" expected got

let test_text_summary () =
  let diags = run [ "lib/bad_banned.ml" ] in
  let text = Output.render ~format:Output.Text diags in
  Alcotest.(check bool) "summary line present"
    true
    (String.ends_with ~suffix:"ckpt-lint: 5 error(s), 0 warning(s)" text);
  Alcotest.(check int) "clean summary"
    0
    (List.length (run [ "lib/good_banned.ml" ]))

let suite =
  [
    Alcotest.test_case "config: parse and query" `Quick test_config_parse;
    Alcotest.test_case "config: rejects malformed input" `Quick test_config_rejects;
    Alcotest.test_case "rule: float-polymorphic-compare" `Quick test_float_compare;
    Alcotest.test_case "rule: no-wall-clock" `Quick test_wall_clock;
    Alcotest.test_case "rule: no-global-random" `Quick test_global_random;
    Alcotest.test_case "rule: unguarded-global-mutable" `Quick test_global_mutable;
    Alcotest.test_case "rule: span-scope-safety" `Quick test_span_scope;
    Alcotest.test_case "rule: no-direct-gc-stat" `Quick test_gc_stat;
    Alcotest.test_case "rule: banned-in-lib" `Quick test_banned;
    Alcotest.test_case "driver: parse error diagnostic" `Quick test_parse_error;
    Alcotest.test_case "config: allowlist and severity overrides" `Quick
      test_allowlist_and_severity;
    Alcotest.test_case "config: exclude prunes the walk" `Quick test_exclude;
    Alcotest.test_case "golden: fixture tree JSON" `Quick test_golden_json;
    Alcotest.test_case "output: text summary" `Quick test_text_summary;
  ]

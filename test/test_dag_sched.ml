(* Tests for general-DAG scheduling (linearization + placement) and the
   Section 6 live-set cost model. *)

module Task = Ckpt_dag.Task
module Dag = Ckpt_dag.Dag
module Generate = Ckpt_dag.Generate
module Rng = Ckpt_prng.Rng
module Dag_sched = Ckpt_core.Dag_sched
module Chain_problem = Ckpt_core.Chain_problem
module Brute_force = Ckpt_core.Brute_force

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let mk ?(work = 1.0) ?(c = 0.5) ?(r = 0.5) id =
  Task.make ~id ~work ~checkpoint_cost:c ~recovery_cost:r ()

let diamond () = Dag.create [ mk 0; mk 1; mk 2; mk 3 ] [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_live_set_on_chain_is_singleton () =
  (* The paper's remark: on a linear chain exactly one task needs
     saving at any point. *)
  let chain = Dag.of_chain [ mk 0; mk 1; mk 2; mk 3 ] in
  let order = [ 0; 1; 2; 3 ] in
  for position = 0 to 3 do
    match Dag_sched.live_set chain order ~position with
    | [ task ] ->
        Alcotest.(check int)
          (Printf.sprintf "live set at %d is the last executed task" position)
          position task.Task.id
    | live ->
        Alcotest.fail
          (Printf.sprintf "expected singleton at %d, got %d" position (List.length live))
  done

let test_live_set_on_diamond () =
  let d = diamond () in
  let order = [ 0; 1; 2; 3 ] in
  let ids position =
    List.map (fun (t : Task.t) -> t.Task.id) (Dag_sched.live_set d order ~position)
  in
  Alcotest.(check (list int)) "after fork" [ 0 ] (ids 0);
  Alcotest.(check (list int)) "after fork+left" [ 0; 1 ] (ids 1);
  (* Fork's two successors executed: only the branches stay live. *)
  Alcotest.(check (list int)) "after both branches" [ 1; 2 ] (ids 2);
  (* Everything executed: the sink output is the result. *)
  Alcotest.(check (list int)) "at completion" [ 3 ] (ids 3)

let test_chain_of_linearization_task_costs () =
  let d = diamond () in
  let problem = Dag_sched.chain_of_linearization ~lambda:0.1 d [ 0; 2; 1; 3 ] in
  Alcotest.(check int) "size" 4 (Chain_problem.size problem);
  (* Position 1 carries task 2's data. *)
  close "work carried over" 1.0 problem.Chain_problem.tasks.(1).Task.work;
  close "checkpoint cost carried over" 0.5
    problem.Chain_problem.tasks.(1).Task.checkpoint_cost;
  Alcotest.check_raises "invalid order rejected"
    (Invalid_argument "Dag_sched: not a linearization of the DAG") (fun () ->
      ignore (Dag_sched.chain_of_linearization ~lambda:0.1 d [ 1; 0; 2; 3 ]))

let live_sum_model =
  Dag_sched.Live_set
    {
      checkpoint = (fun live -> Ckpt_stats.Kahan.sum_list (List.map (fun (t : Task.t) -> t.Task.checkpoint_cost) live));
      recovery = (fun live -> Ckpt_stats.Kahan.sum_list (List.map (fun (t : Task.t) -> t.Task.recovery_cost) live));
    }

let test_live_set_model_on_chain_equals_task_costs () =
  (* On a chain the live set is a singleton, so summing over it equals
     the Section 2 per-task model: the two cost models must coincide. *)
  let rng = Rng.create ~seed:5L in
  let spec = Generate.uniform_costs () in
  let dag = Generate.chain rng spec ~n:8 in
  let order = Dag.topological_order dag in
  let a = Dag_sched.solve_order ~lambda:0.07 dag order in
  let b = Dag_sched.solve_order ~cost_model:live_sum_model ~lambda:0.07 dag order in
  close "cost models coincide on chains" a.Dag_sched.expected_makespan
    b.Dag_sched.expected_makespan

let test_live_set_model_penalises_wide_frontiers () =
  (* On a diamond, checkpointing between the two branches must save both
     the fork output and the first branch: costlier than under the
     per-task model. *)
  let d = diamond () in
  let order = [ 0; 1; 2; 3 ] in
  let task_model = Dag_sched.chain_of_linearization ~lambda:0.1 d order in
  let live_model =
    Dag_sched.chain_of_linearization ~cost_model:live_sum_model ~lambda:0.1 d order
  in
  Alcotest.(check bool) "live-set checkpoint after position 1 is costlier" true
    (live_model.Chain_problem.tasks.(1).Task.checkpoint_cost
     > task_model.Chain_problem.tasks.(1).Task.checkpoint_cost)

let test_exact_small_beats_heuristics () =
  let rng = Rng.create ~seed:11L in
  let spec = Generate.uniform_costs () in
  for trial = 1 to 5 do
    let dag = Generate.random_dag (Rng.substream rng (string_of_int trial)) spec ~n:6 ~edge_prob:0.3 in
    let exact = Dag_sched.exact_small ~lambda:0.08 dag in
    let heuristic = Dag_sched.solve_heuristic ~lambda:0.08 dag in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: exact <= heuristic" trial)
      true
      (exact.Dag_sched.expected_makespan
       <= heuristic.Dag_sched.expected_makespan +. 1e-9)
  done

let test_exact_small_matches_independent_exhaustive () =
  (* On an edge-less DAG both solvers explore orderings x placements. *)
  let tasks =
    List.mapi
      (fun i (w, c) -> Task.make ~id:i ~work:w ~checkpoint_cost:c ~recovery_cost:c ())
      [ (3.0, 0.2); (1.0, 1.0); (4.0, 0.5); (2.0, 0.3) ]
  in
  let dag = Dag.of_independent tasks in
  let exact = Dag_sched.exact_small ~lambda:0.12 dag in
  let reference, _ = Brute_force.independent_exhaustive ~lambda:0.12 tasks in
  close "agrees with independent exhaustive" reference exact.Dag_sched.expected_makespan

let test_linearize_strategies_valid () =
  let rng = Rng.create ~seed:13L in
  let spec = Generate.uniform_costs () in
  let dag = Generate.layered rng spec ~layers:4 ~width:3 ~edge_prob:0.4 in
  List.iter
    (fun strategy ->
      let order = Dag_sched.linearize strategy dag in
      Alcotest.(check bool) "valid linearization" true (Dag.is_linearization dag order))
    [ Dag_sched.Deterministic; Dag_sched.Heaviest_first; Dag_sched.Lightest_first;
      Dag_sched.Critical_path ]

let test_critical_path_priority () =
  (* Two independent branches; critical-path order runs the heavy branch
     first. *)
  let tasks = [ mk ~work:1.0 0; mk ~work:10.0 1; mk ~work:1.0 2 ] in
  let dag = Dag.create tasks [ (1, 2) ] in
  match Dag_sched.linearize Dag_sched.Critical_path dag with
  | 1 :: _ -> ()
  | order ->
      Alcotest.fail
        ("heavy chain should start: "
        ^ String.concat "," (List.map string_of_int order))

let test_local_search_improves_or_matches () =
  let rng = Rng.create ~seed:2025L in
  let spec = Generate.uniform_costs () in
  for trial = 1 to 5 do
    let dag =
      Generate.random_dag (Rng.substream rng (Printf.sprintf "ls-%d" trial)) spec ~n:8
        ~edge_prob:0.25
    in
    let heuristic = Dag_sched.solve_heuristic ~lambda:0.08 dag in
    let searched =
      Dag_sched.local_search ~iterations:300
        ~rng:(Rng.substream rng (Printf.sprintf "ls-rng-%d" trial))
        ~lambda:0.08 dag
    in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: search <= heuristic" trial)
      true
      (searched.Dag_sched.expected_makespan
       <= heuristic.Dag_sched.expected_makespan +. 1e-9);
    Alcotest.(check bool) "search order valid" true
      (Dag.is_linearization dag searched.Dag_sched.order);
    (* And it cannot beat the exhaustive optimum. *)
    let exact = Dag_sched.exact_small ~lambda:0.08 dag in
    Alcotest.(check bool) "search >= exact" true
      (searched.Dag_sched.expected_makespan
       >= exact.Dag_sched.expected_makespan -. 1e-9)
  done

let qcheck_exact_small_optimal_on_chains =
  (* On a chain there is a single linearization, so exact_small must
     equal the chain DP. *)
  QCheck.Test.make ~name:"exact_small = chain DP on chains" ~count:30
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create ~seed:(Int64.of_int (seed + 31)) in
      let spec = Generate.uniform_costs () in
      let dag = Generate.chain rng spec ~n in
      let exact = Dag_sched.exact_small ~lambda:0.06 dag in
      let chain = Chain_problem.of_dag ~lambda:0.06 dag in
      let dp = Ckpt_core.Chain_dp.solve chain in
      Float.abs (exact.Dag_sched.expected_makespan -. dp.Ckpt_core.Chain_dp.expected_makespan)
      <= 1e-9 *. dp.Ckpt_core.Chain_dp.expected_makespan)

let suite =
  [
    Alcotest.test_case "live set on chains is a singleton" `Quick
      test_live_set_on_chain_is_singleton;
    Alcotest.test_case "live set on a diamond" `Quick test_live_set_on_diamond;
    Alcotest.test_case "chain of linearization (task costs)" `Quick
      test_chain_of_linearization_task_costs;
    Alcotest.test_case "live-set model = task model on chains" `Quick
      test_live_set_model_on_chain_equals_task_costs;
    Alcotest.test_case "live-set model penalises wide frontiers" `Quick
      test_live_set_model_penalises_wide_frontiers;
    Alcotest.test_case "exact beats heuristics" `Slow test_exact_small_beats_heuristics;
    Alcotest.test_case "exact matches independent exhaustive" `Slow
      test_exact_small_matches_independent_exhaustive;
    Alcotest.test_case "strategies produce linearizations" `Quick
      test_linearize_strategies_valid;
    Alcotest.test_case "critical-path priority" `Quick test_critical_path_priority;
    Alcotest.test_case "local search" `Slow test_local_search_improves_or_matches;
    QCheck_alcotest.to_alcotest qcheck_exact_small_optimal_on_chains;
  ]

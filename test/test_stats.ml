(* Tests for the statistics substrate. *)

module Kahan = Ckpt_stats.Kahan
module Welford = Ckpt_stats.Welford
module Descriptive = Ckpt_stats.Descriptive
module Histogram = Ckpt_stats.Histogram
module Regression = Ckpt_stats.Regression
module Special = Ckpt_stats.Special
module Normal = Ckpt_stats.Normal
module Table = Ckpt_stats.Table
module Ks_test = Ckpt_stats.Ks_test

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let test_kahan_compensation () =
  (* 1 + 1e16 * eps-sized terms: naive summation loses them entirely. *)
  let acc = Kahan.create () in
  Kahan.add acc 1e16;
  for _ = 1 to 10_000 do
    Kahan.add acc 1.0
  done;
  Kahan.add acc (-1e16);
  close "compensated sum survives magnitude swings" 10_000.0 (Kahan.sum acc)

let test_kahan_batch () =
  let arr = Array.init 1000 (fun i -> float_of_int (i + 1)) in
  close "sum_array of 1..1000" 500_500.0 (Kahan.sum_array arr);
  close "sum_list" 6.0 (Kahan.sum_list [ 1.0; 2.0; 3.0 ])

let test_welford_known () =
  let acc = Welford.create () in
  List.iter (Welford.add acc) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  close "mean" 5.0 (Welford.mean acc);
  close "unbiased variance" (32.0 /. 7.0) (Welford.variance acc);
  Alcotest.(check int) "count" 8 (Welford.count acc);
  close "min" 2.0 (Welford.min acc);
  close "max" 9.0 (Welford.max acc)

let test_welford_empty () =
  let acc = Welford.create () in
  Alcotest.check_raises "mean of empty raises"
    (Invalid_argument "Welford.mean: empty accumulator") (fun () ->
      ignore (Welford.mean acc))

let test_welford_merge () =
  let xs = Array.init 100 (fun i -> sin (float_of_int i)) in
  let all = Welford.create () and left = Welford.create () and right = Welford.create () in
  Array.iteri
    (fun i x ->
      Welford.add all x;
      if i < 37 then Welford.add left x else Welford.add right x)
    xs;
  let merged = Welford.merge left right in
  close "merged mean" (Welford.mean all) (Welford.mean merged);
  close "merged variance" (Welford.variance all) (Welford.variance merged);
  Alcotest.(check int) "merged count" 100 (Welford.count merged)

let test_welford_merge_no_aliasing () =
  (* Regression: merge used to return [x] itself when [y] was empty, so
     adding to the merge result silently mutated the input accumulator. *)
  let x = Welford.create () in
  List.iter (Welford.add x) [ 1.0; 2.0; 3.0 ];
  let empty = Welford.create () in
  let merged_right = Welford.merge x empty in
  Welford.add merged_right 1000.0;
  Alcotest.(check int) "x untouched after add to merge x empty" 3 (Welford.count x);
  close "x mean untouched" 2.0 (Welford.mean x);
  let merged_left = Welford.merge empty x in
  Welford.add merged_left 1000.0;
  Alcotest.(check int) "x untouched after add to merge empty x" 3 (Welford.count x);
  Alcotest.(check int) "empty untouched" 0 (Welford.count empty);
  (* copy is independent too. *)
  let c = Welford.copy x in
  Welford.add c 7.0;
  Alcotest.(check int) "copy independent" 3 (Welford.count x)

let test_confidence_interval () =
  let acc = Welford.create () in
  for i = 1 to 1000 do
    Welford.add acc (float_of_int (i mod 10))
  done;
  let lo, hi = Welford.confidence_interval acc ~level:0.99 in
  let mean = Welford.mean acc in
  Alcotest.(check bool) "interval brackets the mean" true (lo < mean && mean < hi);
  let lo95, hi95 = Welford.confidence_interval acc ~level:0.95 in
  Alcotest.(check bool) "99% interval wider than 95%" true (hi -. lo > hi95 -. lo95)

let test_descriptive () =
  let xs = [| 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 |] in
  close "mean" 3.875 (Descriptive.mean xs);
  close "median" 3.5 (Descriptive.median xs);
  close "q0 is min" 1.0 (Descriptive.quantile xs 0.0);
  close "q1 is max" 9.0 (Descriptive.quantile xs 1.0);
  close "relative error" 0.1 (Descriptive.relative_error ~actual:11.0 ~reference:10.0);
  close "relative error of 0/0" 0.0 (Descriptive.relative_error ~actual:0.0 ~reference:0.0)

let test_quantile_rejects_nan () =
  (* NaN policy: quantiles of partially-ordered data are rejected rather
     than silently corrupted (the old polymorphic sort placed NaNs
     wherever the comparison happened to land them). *)
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Descriptive.quantile: NaN in sample") (fun () ->
      ignore (Descriptive.quantile [| 1.0; Float.nan; 3.0 |] 0.5));
  Alcotest.check_raises "all-NaN rejected"
    (Invalid_argument "Descriptive.quantile: NaN in sample") (fun () ->
      ignore (Descriptive.quantile [| Float.nan |] 0.0));
  (* Infinities are ordered fine and stay legal. *)
  close "infinities sort" 1.0
    (Descriptive.quantile [| Float.infinity; 1.0; Float.neg_infinity |] 0.5);
  Alcotest.check_raises "KS rejects NaN too"
    (Invalid_argument "Ks_test.statistic: NaN in sample") (fun () ->
      ignore (Ks_test.statistic ~cdf:(fun x -> x) [| 0.5; Float.nan |]))

let test_histogram () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; -3.0; 42.0; 9.99 ];
  Alcotest.(check int) "total counts everything" 6 (Histogram.total h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Histogram.overflow h);
  let counts = Histogram.counts h in
  Alcotest.(check int) "bin 0" 1 counts.(0);
  Alcotest.(check int) "bin 1" 2 counts.(1);
  Alcotest.(check int) "bin 9" 1 counts.(9);
  close "bin center" 0.5 (Histogram.bin_center h 0);
  Alcotest.(check bool) "render mentions a bar" true
    (String.length (Histogram.render h ~width:20) > 0)

let test_regression_exact_line () =
  let pts = Array.init 20 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 2.0)) in
  let fit = Regression.linear pts in
  close "slope" 3.0 fit.Regression.slope;
  close "intercept" 2.0 fit.Regression.intercept;
  close "r^2 of exact fit" 1.0 fit.Regression.r_squared

let test_regression_loglog () =
  let pts = Array.init 15 (fun i ->
      let x = float_of_int (i + 2) in
      (x, 5.0 *. x *. x))
  in
  let fit = Regression.log_log pts in
  close ~tol:1e-9 "power-law slope" 2.0 fit.Regression.slope

let test_special_gamma () =
  close "lnGamma(5) = ln 24" (log 24.0) (Special.ln_gamma 5.0);
  close "lnGamma(0.5) = ln sqrt(pi)" (0.5 *. log Float.pi) (Special.ln_gamma 0.5);
  close ~tol:1e-10 "P(1, x) = 1 - exp(-x)" (1.0 -. exp (-1.7)) (Special.gamma_p 1.0 1.7);
  close ~tol:1e-10 "Q = 1 - P" (1.0 -. Special.gamma_p 2.5 3.0) (Special.gamma_q 2.5 3.0)

let test_special_erf () =
  close ~tol:1e-7 "erf(1)" 0.8427007929497149 (Special.erf 1.0);
  close ~tol:1e-7 "erf(-1) odd" (-0.8427007929497149) (Special.erf (-1.0));
  close ~tol:1e-7 "erfc(0.5)" (1.0 -. Special.erf 0.5) (Special.erfc 0.5)

let test_normal () =
  close "cdf(0)" 0.5 (Normal.cdf 0.0);
  close ~tol:1e-7 "cdf(1.96)" 0.9750021048517795 (Normal.cdf 1.96);
  close ~tol:1e-6 "quantile(cdf(x)) = x" 0.7 (Normal.quantile (Normal.cdf 0.7));
  close ~tol:1e-6 "quantile at tail" (-2.0) (Normal.quantile (Normal.cdf (-2.0)));
  close ~tol:1e-8 "pdf(0)" (1.0 /. sqrt (2.0 *. Float.pi)) (Normal.pdf 0.0)

let test_table_render () =
  let t =
    Table.create ~title:"demo" ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "1.5" ];
  Table.add_rule t;
  Table.add_row t [ "beta"; "22" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "contains title" true
    (Astring_like.contains rendered "=== demo ===");
  Alcotest.(check bool) "contains row" true (Astring_like.contains rendered "alpha");
  Alcotest.check_raises "row arity enforced"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "only-one" ])

let test_ks_statistic_exact () =
  (* Two points {0.25, 0.75} against Uniform[0,1]: the empirical CDF
     steps at those points; D = max deviation = 0.25. *)
  let d = Ks_test.statistic ~cdf:(fun x -> x) [| 0.25; 0.75 |] in
  close "hand-computed statistic" 0.25 d

let test_ks_accepts_true_distribution () =
  let rng = Ckpt_prng.Rng.create ~seed:314L in
  let xs = Array.init 5000 (fun _ -> Ckpt_prng.Rng.float rng) in
  Alcotest.(check bool) "uniform sample accepted" true
    (Ks_test.test ~cdf:(fun x -> Float.max 0.0 (Float.min 1.0 x)) xs)

let test_ks_rejects_wrong_distribution () =
  let rng = Ckpt_prng.Rng.create ~seed:315L in
  (* Squared uniforms are not uniform. *)
  let xs = Array.init 5000 (fun _ -> let u = Ckpt_prng.Rng.float rng in u *. u) in
  Alcotest.(check bool) "biased sample rejected" false
    (Ks_test.test ~cdf:(fun x -> Float.max 0.0 (Float.min 1.0 x)) xs)

let test_ks_p_value_monotone () =
  Alcotest.(check bool) "larger D, smaller p" true
    (Ks_test.p_value ~n:1000 0.05 > Ks_test.p_value ~n:1000 0.10);
  close ~tol:1e-9 "D = 0 has p = 1" 1.0 (Ks_test.p_value ~n:100 0.0)

let qcheck_quantile_bounds =
  QCheck.Test.make ~name:"quantile lies within data range" ~count:300
    QCheck.(pair (array_of_size (Gen.int_range 1 40) (float_range (-100.) 100.))
              (float_range 0.0 1.0))
    (fun (xs, q) ->
      let v = Descriptive.quantile xs q in
      let mn = Array.fold_left Float.min infinity xs in
      let mx = Array.fold_left Float.max neg_infinity xs in
      v >= mn -. 1e-9 && v <= mx +. 1e-9)

let qcheck_welford_matches_batch =
  QCheck.Test.make ~name:"Welford mean equals batch mean" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 200) (float_range (-1e3) 1e3))
    (fun xs ->
      let acc = Welford.create () in
      Array.iter (Welford.add acc) xs;
      Float.abs (Welford.mean acc -. Descriptive.mean xs)
      <= 1e-9 *. Float.max 1.0 (Float.abs (Descriptive.mean xs)))

let suite =
  [
    Alcotest.test_case "kahan compensation" `Quick test_kahan_compensation;
    Alcotest.test_case "kahan batch sums" `Quick test_kahan_batch;
    Alcotest.test_case "welford known values" `Quick test_welford_known;
    Alcotest.test_case "welford empty raises" `Quick test_welford_empty;
    Alcotest.test_case "welford merge" `Quick test_welford_merge;
    Alcotest.test_case "welford merge never aliases" `Quick test_welford_merge_no_aliasing;
    Alcotest.test_case "quantile rejects NaN" `Quick test_quantile_rejects_nan;
    Alcotest.test_case "confidence intervals" `Quick test_confidence_interval;
    Alcotest.test_case "descriptive statistics" `Quick test_descriptive;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "regression exact line" `Quick test_regression_exact_line;
    Alcotest.test_case "regression log-log power law" `Quick test_regression_loglog;
    Alcotest.test_case "incomplete gamma" `Quick test_special_gamma;
    Alcotest.test_case "error function" `Quick test_special_erf;
    Alcotest.test_case "normal law helpers" `Quick test_normal;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "KS statistic" `Quick test_ks_statistic_exact;
    Alcotest.test_case "KS accepts true law" `Quick test_ks_accepts_true_distribution;
    Alcotest.test_case "KS rejects wrong law" `Quick test_ks_rejects_wrong_distribution;
    Alcotest.test_case "KS p-value shape" `Quick test_ks_p_value_monotone;
    QCheck_alcotest.to_alcotest qcheck_quantile_bounds;
    QCheck_alcotest.to_alcotest qcheck_welford_matches_batch;
  ]

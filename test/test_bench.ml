(* The benchmark-results subsystem (lib/benchmarks): JSON schema
   round-trips, the noise-aware comparator's verdicts on synthetic
   baselines, bench.toml accept/reject (unknown keys are hard errors),
   and the typed required-keys validation that replaced CI's grep. *)

module Json = Ckpt_bench.Json
module Schema = Ckpt_bench.Schema
module Bench_config = Ckpt_bench.Bench_config
module Compare = Ckpt_bench.Compare

(* --- JSON reader/writer --------------------------------------------- *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nline\twith \\ and unicode \xc3\xa9");
        ("n", Json.Number 3.141592653589793);
        ("i", Json.Number 42.0);
        ("neg", Json.Number (-1.5e-9));
        ("t", Json.Bool true);
        ("f", Json.Bool false);
        ("z", Json.Null);
        ("l", Json.List [ Json.Number 1.0; Json.String "x"; Json.Obj [] ]);
        ("o", Json.Obj [ ("nested", Json.List []) ]);
      ]
  in
  let reparsed = Json.parse (Json.to_string v) in
  Alcotest.(check bool) "round-trips structurally" true (Json.equal v reparsed)

let test_json_number_precision () =
  List.iter
    (fun x ->
      let reparsed = Json.parse (Json.to_string (Json.Number x)) in
      match Json.to_float reparsed with
      | Some y -> Alcotest.(check bool) (Printf.sprintf "%h exact" x) true (Float.equal x y)
      | None -> Alcotest.fail "number did not parse back as a number")
    [ 0.1; 1.0 /. 3.0; 1.0e-300; 123456789.123456789; 5.8526572849543044e-08 ]

let test_json_rejects () =
  let rejects label s =
    match Json.parse_result s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": expected a parse error")
  in
  rejects "trailing garbage" "{} x";
  rejects "duplicate key" "{\"a\":1,\"a\":2}";
  rejects "unterminated string" "\"abc";
  rejects "bare word" "bench";
  rejects "bad escape" "\"\\q\"";
  rejects "surrogate escape" "\"\\ud834\"";
  rejects "leading zero junk" "01x";
  rejects "non-finite" "1e999";
  rejects "raw control char" "\"a\x01b\""

let test_json_escape_parsing () =
  match Json.parse "\"\\u00e9\\n\\t\"" with
  | Json.String s -> Alcotest.(check string) "escapes decode" "\xc3\xa9\n\t" s
  | _ -> Alcotest.fail "expected a string"

(* --- schema --------------------------------------------------------- *)

let case ?(tags = [ "kernel" ]) ?(samples = 10) ?(stddev = 0.0) name mean =
  {
    Schema.name;
    tags;
    unit_ = "s/call";
    samples;
    mean;
    stddev;
    ci99 = (mean -. stddev, mean +. stddev);
    wall_s = mean *. float_of_int samples;
  }

let meta = { Schema.git_sha = "testsha"; ocaml_version = "5.1.1"; domains = 2; mode = Schema.Quick }

let sample_metrics =
  Json.Obj
    [
      ("metrics", Json.Obj [ ("mc.runs", Json.Number 40000.0); ("sim.failures", Json.Number 7.0) ]);
      ("timings", Json.Obj [ ("pool.wall_s", Json.Number 0.12) ]);
    ]

let sample_run cases = { Schema.meta; cases; metrics = sample_metrics }

let test_schema_round_trip () =
  let run =
    sample_run [ case "alpha" 1.5e-6; case ~stddev:2e-8 ~samples:64 "beta" 3.25e-3 ]
  in
  let json_text = Json.to_string (Schema.to_json run) in
  (match Schema.of_json (Json.parse json_text) with
  | Ok reparsed ->
      Alcotest.(check bool) "serialize -> parse -> equal" true (Schema.equal_run run reparsed)
  | Error msg -> Alcotest.fail msg);
  (* And through the file layer. *)
  let path = Filename.temp_file "ckpt_bench_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Schema.write ~path run;
      match Schema.read ~path with
      | Ok reparsed ->
          Alcotest.(check bool) "write -> read -> equal" true (Schema.equal_run run reparsed)
      | Error msg -> Alcotest.fail msg)

let test_schema_rejects () =
  let rejects label json =
    match Schema.of_json json with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": expected a schema error")
  in
  let valid = Schema.to_json (sample_run [ case "alpha" 1.0 ]) in
  rejects "newer schema version"
    (match valid with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if String.equal k "schema_version" then (k, Json.Number 999.0) else (k, v))
             fields)
    | _ -> assert false);
  rejects "missing meta"
    (match valid with
    | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "meta") fields)
    | _ -> assert false);
  rejects "ill-typed mean" (Json.parse
    {|{"schema_version":1,
       "meta":{"git_sha":"x","ocaml_version":"5.1.1","domains":1,"mode":"quick"},
       "cases":[{"name":"a","tags":[],"unit":"s","samples":1,"mean":"fast",
                 "stddev":0,"ci99_lo":0,"ci99_hi":0,"wall_s":0}],
       "metrics":{}}|});
  rejects "bad mode" (Json.parse
    {|{"schema_version":1,
       "meta":{"git_sha":"x","ocaml_version":"5.1.1","domains":1,"mode":"fastest"},
       "cases":[],"metrics":{}}|})

(* The latent CI bug this subsystem fixes: a metric-key name inside a
   string VALUE satisfied `grep -q "\"key\""`; the typed check only
   accepts actual field names of the metrics/timings objects. *)
let test_required_keys_typed () =
  let run = sample_run [ case "alpha" 1.0 ] in
  Alcotest.(check bool) "field name found" true (Schema.has_metric run "mc.runs");
  Alcotest.(check bool) "timing field found" true (Schema.has_metric run "pool.wall_s");
  Alcotest.(check bool) "absent key" false (Schema.has_metric run "dp.memo_hits");
  let smuggled =
    { run with
      Schema.metrics =
        Json.Obj
          [
            ( "metrics",
              Json.Obj [ ("note", Json.String "dp.memo_hits lives in a value") ] );
            ("timings", Json.Obj []);
          ] }
  in
  Alcotest.(check bool) "key inside a string value does not count" false
    (Schema.has_metric smuggled "dp.memo_hits")

(* --- comparator ----------------------------------------------------- *)

let verdict_of report name =
  match List.find_opt (fun c -> String.equal c.Compare.name name) report.Compare.cases with
  | Some c -> c.Compare.verdict
  | None -> Alcotest.fail (Printf.sprintf "no report entry for case %s" name)

let check_verdict label expected got =
  Alcotest.(check string) label
    (Compare.verdict_to_string expected)
    (Compare.verdict_to_string got)

let test_comparator_verdicts () =
  (* Tight cases: se = 0, so the 10% relative band decides. *)
  let baseline =
    sample_run
      [
        case "steady" 100.0; case "faster" 100.0; case "slower" 100.0;
        case ~stddev:20.0 ~samples:4 "noisy" 100.0; case "vanished" 1.0;
      ]
  in
  let candidate =
    sample_run
      [
        case "steady" 109.0;  (* +9% < 10% *)
        case "faster" 85.0;   (* -15% *)
        case "slower" 111.0;  (* +11% > 10% *)
        (* +25%, but 3 * sqrt(2 * (20/sqrt 4)^2) = 42.4 > 25: within noise. *)
        case ~stddev:20.0 ~samples:4 "noisy" 125.0;
        case "appeared" 2.0;
      ]
  in
  let report = Compare.run ~baseline candidate in
  check_verdict "within 10% band" Compare.Within_noise (verdict_of report "steady");
  check_verdict "improvement" Compare.Improvement (verdict_of report "faster");
  check_verdict "regression" Compare.Regression (verdict_of report "slower");
  check_verdict "noise-aware: wide stddev widens the band" Compare.Within_noise
    (verdict_of report "noisy");
  check_verdict "missing case" Compare.Missing (verdict_of report "vanished");
  check_verdict "new case" Compare.New (verdict_of report "appeared");
  Alcotest.(check bool) "missing fails the gate" false (Compare.ok report);
  Alcotest.(check int) "one regression" 1 report.Compare.regressions;
  Alcotest.(check int) "one missing" 1 report.Compare.missing;
  (* Without the vanished case the regression still fails the gate. *)
  let baseline' =
    sample_run (List.filter (fun c -> c.Schema.name <> "vanished") baseline.Schema.cases)
  in
  let report' = Compare.run ~baseline:baseline' candidate in
  Alcotest.(check bool) "regression fails the gate" false (Compare.ok report');
  (* All-clear passes. *)
  let report'' =
    Compare.run ~baseline:baseline' { candidate with Schema.cases = baseline'.Schema.cases }
  in
  Alcotest.(check bool) "identical runs pass" true (Compare.ok report'')

let test_comparator_overrides () =
  let baseline = sample_run [ case "tuned" 100.0; case "flaky" 100.0 ] in
  let candidate = sample_run [ case "tuned" 145.0; case "flaky" 400.0 ] in
  (* Defaults: both regress. *)
  let strict = Compare.run ~baseline candidate in
  Alcotest.(check int) "strict finds two regressions" 2 strict.Compare.regressions;
  (* bench.toml overrides: a generous per-case band and a skip. *)
  let config =
    Bench_config.parse_string
      "[bench]\nmax_regression = 0.10\n\n[case.tuned]\nmax_regression = 0.5\n\n\
       [case.flaky]\nskip = true\n"
  in
  let relaxed = Compare.run ~config ~baseline candidate in
  check_verdict "override widens the band" Compare.Within_noise
    (verdict_of relaxed "tuned");
  check_verdict "skip excludes the case" Compare.Skipped (verdict_of relaxed "flaky");
  Alcotest.(check bool) "relaxed gate passes" true (Compare.ok relaxed)

(* --- bench.toml ----------------------------------------------------- *)

let test_config_accepts () =
  let config =
    Bench_config.parse_string
      "# comment\n[bench]\nmax_regression = 0.25\nsigma = 4\nrequired_metrics = [\n\
      \  \"mc.runs\", # inline comment\n  \"sim.failures\",\n]\n\n\
       [case.chain-dp-800]\nmax_regression = 0.5\nskip = false\n"
  in
  Alcotest.(check (float 1e-9)) "max_regression" 0.25 config.Bench_config.max_regression;
  Alcotest.(check (float 1e-9)) "sigma" 4.0 config.Bench_config.sigma;
  Alcotest.(check (list string)) "required_metrics" [ "mc.runs"; "sim.failures" ]
    config.Bench_config.required_metrics;
  let max_regression, sigma = Bench_config.effective config ~case:"chain-dp-800" in
  Alcotest.(check (float 1e-9)) "case override" 0.5 max_regression;
  Alcotest.(check (float 1e-9)) "case inherits sigma" 4.0 sigma;
  let max_regression', _ = Bench_config.effective config ~case:"other" in
  Alcotest.(check (float 1e-9)) "unlisted case uses default" 0.25 max_regression';
  Alcotest.(check bool) "skip = false" false
    (Bench_config.skipped config ~case:"chain-dp-800")

let test_config_rejects () =
  let rejects label contents =
    match Bench_config.parse_string contents with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail (label ^ ": expected a parse failure")
  in
  rejects "unknown key in [bench]" "[bench]\nmax_regresion = 0.1\n";
  rejects "unknown key in [case.x]" "[case.x]\nthreshold = 0.1\n";
  rejects "unknown section" "[bnech]\nmax_regression = 0.1\n";
  rejects "string where number expected" "[bench]\nsigma = \"3\"\n";
  rejects "number where bool expected" "[case.x]\nskip = 1\n";
  rejects "non-positive threshold" "[bench]\nmax_regression = 0\n";
  rejects "negative sigma" "[bench]\nsigma = -1\n";
  rejects "key outside any section" "max_regression = 0.1\n";
  rejects "unterminated array" "[bench]\nrequired_metrics = [\"a\",\n";
  rejects "malformed value" "[bench]\nsigma = fast\n"

(* --- snapshot diff (the ckpt-obs diff engine) ----------------------- *)

module Snapshot_diff = Ckpt_bench.Snapshot_diff

let parse_doc s =
  let path = Filename.temp_file "ckpt_snapdiff_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      Snapshot_diff.load path)

let test_snapshot_diff_file_shapes () =
  (* Bare --metrics json snapshot. *)
  let bare = parse_doc {|{"metrics":{"mc.runs":1000},"timings":{"pool.wall_s":0.5}}|} in
  Alcotest.(check int) "bare: engine rows" 1 (List.length bare.Snapshot_diff.engine);
  (* The bench smoke's combined object. *)
  let smoke =
    parse_doc
      {|{"bench":{"smoke":true},"metrics":{"mc.runs":1000},"timings":{}}|}
  in
  Alcotest.(check int) "smoke: engine rows" 1 (List.length smoke.Snapshot_diff.engine);
  (* A full BENCH_<n>.json: snapshot nested under the top-level
     "metrics" key, recognizable because that object itself carries
     metrics/timings. *)
  let bench =
    parse_doc
      {|{"schema_version":1,"meta":{},"cases":[],
         "metrics":{"metrics":{"mc.runs":1000,"sim.failures":3},
                    "timings":{"pool.wall_s":0.5}}}|}
  in
  Alcotest.(check int) "BENCH file: engine rows" 2 (List.length bench.Snapshot_diff.engine);
  Alcotest.(check int) "BENCH file: timing rows" 1 (List.length bench.Snapshot_diff.timing);
  match parse_doc {|{"cases":[]}|} with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "file without a snapshot should be rejected"

let test_snapshot_diff_gating () =
  let base =
    parse_doc
      {|{"metrics":{"steady":100,"drifty":100,"gone":5,"zero":0,
                    "hist":{"count":10,"total":1.5}},
         "timings":{"wall":1.0}}|}
  in
  let cand =
    parse_doc
      {|{"metrics":{"steady":109,"drifty":120,"zero":0,
                    "hist":{"count":25,"total":9.9},"fresh":1},
         "timings":{"wall":40.0}}|}
  in
  let r = Snapshot_diff.diff ~base cand in
  let verdict name =
    match List.find_opt (fun (row : Snapshot_diff.row) -> row.name = name) r.Snapshot_diff.rows with
    | Some row -> Snapshot_diff.verdict_to_string row.Snapshot_diff.verdict
    | None -> Alcotest.failf "no row for %s" name
  in
  Alcotest.(check string) "+9% within the 10% band" "ok" (verdict "steady");
  Alcotest.(check string) "+20% drifts" "DRIFT" (verdict "drifty");
  Alcotest.(check string) "removed engine metric gates" "MISSING" (verdict "gone");
  Alcotest.(check string) "0 -> 0 matches" "ok" (verdict "zero");
  Alcotest.(check string) "histograms compare by count" "DRIFT" (verdict "hist");
  Alcotest.(check string) "new rows informational" "new" (verdict "fresh");
  Alcotest.(check string) "timing 40x is still info" "info" (verdict "wall");
  Alcotest.(check bool) "gate fails" false (Snapshot_diff.ok r);
  Alcotest.(check int) "two drifts" 2 r.Snapshot_diff.drifted;
  Alcotest.(check int) "one missing" 1 r.Snapshot_diff.removed;
  (* Widening the band clears the numeric drifts but never the removal. *)
  let wide = Snapshot_diff.diff ~max_change:2.0 ~base cand in
  Alcotest.(check int) "wide band: no drift" 0 wide.Snapshot_diff.drifted;
  Alcotest.(check bool) "missing still gates" false (Snapshot_diff.ok wide);
  (* 0 -> nonzero cannot hide inside a relative band. *)
  let base0 = parse_doc {|{"metrics":{"zero":0},"timings":{}}|} in
  let cand0 = parse_doc {|{"metrics":{"zero":3},"timings":{}}|} in
  let r0 = Snapshot_diff.diff ~max_change:99.0 ~base:base0 cand0 in
  Alcotest.(check int) "0 -> 3 drifts at any band" 1 r0.Snapshot_diff.drifted

let test_snapshot_diff_render () =
  let base = parse_doc {|{"metrics":{"a":1,"b":10},"timings":{}}|} in
  let cand = parse_doc {|{"metrics":{"a":1,"b":20},"timings":{}}|} in
  let r = Snapshot_diff.diff ~base cand in
  let out = Snapshot_diff.render r in
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "drifted row shown" true (contains out "DRIFT");
  Alcotest.(check bool) "summary says FAIL" true (contains out "— FAIL");
  Alcotest.(check bool) "matching row hidden by default" false (contains out "ok");
  let all = Snapshot_diff.render ~all:true r in
  Alcotest.(check bool) "matching row shown with ~all" true (contains all "ok");
  let good = Snapshot_diff.render (Snapshot_diff.diff ~base base) in
  Alcotest.(check bool) "clean diff says ok" true (contains good "— ok")

(* --- obs integration ------------------------------------------------ *)

let test_metrics_find () =
  let counter = Ckpt_obs.Metrics.counter "test.bench_find" in
  Ckpt_obs.Metrics.incr counter;
  let snapshot = Ckpt_obs.Metrics.snapshot () in
  (match Ckpt_obs.Metrics.find snapshot "test.bench_find" with
  | Some (Ckpt_obs.Metrics.Engine, Ckpt_obs.Metrics.Counter n) ->
      Alcotest.(check bool) "counter incremented" true (n >= 1)
  | _ -> Alcotest.fail "expected an engine counter");
  Alcotest.(check bool) "absent name" true
    (Option.is_none (Ckpt_obs.Metrics.find snapshot "test.no_such_metric"))

let suite =
  [
    Alcotest.test_case "json: round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "json: number precision" `Quick test_json_number_precision;
    Alcotest.test_case "json: rejects malformed input" `Quick test_json_rejects;
    Alcotest.test_case "json: escape decoding" `Quick test_json_escape_parsing;
    Alcotest.test_case "schema: round-trip" `Quick test_schema_round_trip;
    Alcotest.test_case "schema: rejects bad files" `Quick test_schema_rejects;
    Alcotest.test_case "schema: typed required-keys check" `Quick test_required_keys_typed;
    Alcotest.test_case "compare: verdicts" `Quick test_comparator_verdicts;
    Alcotest.test_case "compare: bench.toml overrides" `Quick test_comparator_overrides;
    Alcotest.test_case "config: accepts and applies" `Quick test_config_accepts;
    Alcotest.test_case "config: rejects malformed input" `Quick test_config_rejects;
    Alcotest.test_case "snapshot-diff: accepted file shapes" `Quick
      test_snapshot_diff_file_shapes;
    Alcotest.test_case "snapshot-diff: engine gating" `Quick test_snapshot_diff_gating;
    Alcotest.test_case "snapshot-diff: rendering" `Quick test_snapshot_diff_render;
    Alcotest.test_case "obs: Metrics.find" `Quick test_metrics_find;
  ]

(* Tests for the offline observability tools: the JSONL trace reader
   behind `ckpt-obs report` (round-trip with the span exporter, tree
   reconstruction, self-time closure, critical path) and the
   Prometheus/OpenMetrics exposition. *)

module Metrics = Ckpt_obs.Metrics
module Span = Ckpt_obs.Span
module Trace_reader = Ckpt_obs.Trace_reader
module Openmetrics = Ckpt_obs.Openmetrics

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let span ?(args = []) ?(tid = 0) ~depth ~start_ms ~dur_ms name =
  {
    Span.name;
    span_kind = (if dur_ms = 0 then Span.Instant else Span.Complete);
    start_ns = Int64.of_int (start_ms * 1_000_000);
    dur_ns = Int64.of_int (dur_ms * 1_000_000);
    tid;
    depth;
    args;
  }

(* One synthetic track with known self times (ms):
     run [0,10)                       self 10 - 4 - 5 = 1
       phase-a [0,4)                  self 4 - 2     = 2
         leaf [1,3)                   self            2
       phase-b [5,10)                 self            5
       mark (instant, zero self)
     run2 [20,21)                     self            1   *)
let golden =
  [
    span ~depth:0 ~start_ms:0 ~dur_ms:10 "run";
    span ~depth:1 ~start_ms:0 ~dur_ms:4 "phase-a";
    span ~depth:2 ~start_ms:1 ~dur_ms:2 ~args:[ ("k", {|v "q"|}) ] "leaf";
    span ~depth:1 ~start_ms:5 ~dur_ms:5 "phase-b";
    span ~depth:1 ~start_ms:6 ~dur_ms:0 "mark";
    span ~depth:0 ~start_ms:20 ~dur_ms:1 "run2";
  ]

let ms x = float_of_int x *. 1e6

let test_jsonl_round_trip () =
  match Trace_reader.parse_jsonl (Span.to_jsonl golden) with
  | Error msg -> Alcotest.failf "exporter output rejected: %s" msg
  | Ok records ->
      Alcotest.(check bool) "to_jsonl |> parse_jsonl is the identity" true
        (records = golden)

let test_parse_errors_carry_line_numbers () =
  (match Trace_reader.parse_jsonl "{\"name\" 1}\n" with
  | Error msg -> Alcotest.(check bool) "line 1 named" true (contains msg "line 1")
  | Ok _ -> Alcotest.fail "malformed JSON accepted");
  let one = Span.to_jsonl [ List.hd golden ] in
  (match Trace_reader.parse_jsonl (one ^ "{\"kind\":\"span\"}\n") with
  | Error msg -> Alcotest.(check bool) "line 2 named" true (contains msg "line 2")
  | Ok _ -> Alcotest.fail "record missing fields accepted");
  match Trace_reader.parse_jsonl (one ^ "\n\n" ^ one) with
  | Ok [ _; _ ] -> ()
  | Ok rs -> Alcotest.failf "blank lines mangled the parse: %d records" (List.length rs)
  | Error msg -> Alcotest.failf "blank lines rejected: %s" msg

let test_tree_reconstruction () =
  let roots = Trace_reader.build golden in
  Alcotest.(check int) "two roots" 2 (List.length roots);
  let run = List.hd roots in
  Alcotest.(check string) "first root by start time" "run" run.Trace_reader.record.Span.name;
  Alcotest.(check (list string))
    "children in start order"
    [ "phase-a"; "phase-b"; "mark" ]
    (List.map
       (fun t -> t.Trace_reader.record.Span.name)
       run.Trace_reader.children);
  match run.Trace_reader.children with
  | a :: _ ->
      Alcotest.(check (list string))
        "grandchild attached" [ "leaf" ]
        (List.map (fun t -> t.Trace_reader.record.Span.name) a.Trace_reader.children)
  | [] -> Alcotest.fail "phase-a lost its child"

let test_self_time_closure_and_ranking () =
  let r = Trace_reader.report (Trace_reader.build golden) in
  Alcotest.(check int) "complete spans" 5 r.Trace_reader.spans;
  Alcotest.(check int) "instants" 1 r.Trace_reader.instants;
  Alcotest.(check (float 1e-6)) "root wall = 11ms" (ms 11) r.Trace_reader.root_wall_ns;
  (* The acceptance invariant: self time partitions the root wall. *)
  Alcotest.(check (float 1e-6))
    "self times sum to the root wall" r.Trace_reader.root_wall_ns
    r.Trace_reader.total_self_ns;
  (match r.Trace_reader.stats with
  | top :: _ ->
      Alcotest.(check string) "hottest by self time" "phase-b" top.Trace_reader.name;
      Alcotest.(check (float 1e-6)) "its self time" (ms 5) top.Trace_reader.self_ns
  | [] -> Alcotest.fail "empty ranking");
  let leaf = List.find (fun s -> s.Trace_reader.name = "leaf") r.Trace_reader.stats in
  Alcotest.(check (float 1e-6)) "leaf self = total" leaf.Trace_reader.total_ns
    leaf.Trace_reader.self_ns

let test_critical_path () =
  let roots = Trace_reader.build golden in
  match Trace_reader.longest_root roots with
  | None -> Alcotest.fail "no longest root"
  | Some root ->
      Alcotest.(check (list string))
        "follows the longest child at each level"
        [ "run"; "phase-b" ]
        (List.map
           (fun t -> t.Trace_reader.record.Span.name)
           (Trace_reader.critical_path root))

(* Interleaved domains: per-tid tracks must not steal each other's
   children even when depths interleave in start-time order. *)
let test_multi_domain_tracks () =
  let records =
    [
      span ~tid:0 ~depth:0 ~start_ms:0 ~dur_ms:10 "d0-root";
      span ~tid:1 ~depth:0 ~start_ms:1 ~dur_ms:10 "d1-root";
      span ~tid:0 ~depth:1 ~start_ms:2 ~dur_ms:3 "d0-child";
      span ~tid:1 ~depth:1 ~start_ms:2 ~dur_ms:4 "d1-child";
    ]
  in
  let r = Trace_reader.report (Trace_reader.build records) in
  Alcotest.(check (float 1e-6)) "both roots count" (ms 20) r.Trace_reader.root_wall_ns;
  Alcotest.(check (float 1e-6)) "closure across tracks" r.Trace_reader.root_wall_ns
    r.Trace_reader.total_self_ns;
  List.iter
    (fun root ->
      Alcotest.(check int)
        (root.Trace_reader.record.Span.name ^ " kept exactly its own child")
        1
        (List.length root.Trace_reader.children))
    (Trace_reader.build records)

(* Sibling reconstruction: a second depth-1 span after the first closed
   must become a sibling, not a child of the closed one. *)
let test_render_report_smoke () =
  let out = Trace_reader.render_report ~top:3 (Trace_reader.report (Trace_reader.build golden)) in
  List.iter
    (fun needle -> Alcotest.(check bool) (needle ^ " rendered") true (contains out needle))
    [ "hot spans"; "phase-b"; "critical path"; "run" ]

(* --- OpenMetrics ----------------------------------------------------- *)

let test_openmetrics_exposition () =
  let c = Metrics.counter "test.om_runs" in
  let s = Metrics.sum "test.om_lost" in
  let g = Metrics.gauge "test.om_level" in
  let _unset = Metrics.gauge "test.om_unset" in
  let h = Metrics.histogram "test.om_sizes" ~buckets:[| 1.0; 5.0 |] in
  Metrics.reset ();
  Metrics.incr ~by:7 c;
  Metrics.add s 2.5;
  Metrics.set g 0.75;
  List.iter (Metrics.observe h) [ 0.5; 3.0; 4.0; 99.0 ];
  let out = Openmetrics.render (Metrics.snapshot ()) in
  List.iter
    (fun needle -> Alcotest.(check bool) (needle ^ " present") true (contains out needle))
    [
      (* names sanitized to the OpenMetrics charset and prefixed *)
      "# TYPE ckpt_test_om_runs counter\n";
      "ckpt_test_om_runs_total 7\n";
      "# TYPE ckpt_test_om_lost gauge\n";
      "ckpt_test_om_lost 2.5\n";
      "ckpt_test_om_level 0.75\n";
      (* histograms expose *cumulative* le buckets plus +Inf/_sum/_count *)
      "# TYPE ckpt_test_om_sizes histogram\n";
      "ckpt_test_om_sizes_bucket{le=\"1\"} 1\n";
      "ckpt_test_om_sizes_bucket{le=\"5\"} 3\n";
      "ckpt_test_om_sizes_bucket{le=\"+Inf\"} 4\n";
      "ckpt_test_om_sizes_sum 106.5\n";
      "ckpt_test_om_sizes_count 4\n";
      (* an unset gauge is a legal zero-sample family *)
      "# TYPE ckpt_test_om_unset gauge\n";
    ]
  ;
  Alcotest.(check bool) "unset gauge emits no sample" false
    (contains out "\nckpt_test_om_unset ");
  Alcotest.(check bool) "mandatory EOF terminator" true
    (String.ends_with ~suffix:"# EOF\n" out);
  Metrics.reset ()

let test_openmetrics_hit_rate_and_names () =
  Alcotest.(check string) "dots sanitized, prefix added" "ckpt_mc_runs"
    (Openmetrics.metric_name "mc.runs");
  Alcotest.(check string) "dashes sanitized"
    "ckpt_cov_monitor_makespan_bound_pass"
    (Openmetrics.metric_name "cov.monitor.makespan-bound.pass");
  let hits = Metrics.counter "test.om_lookup_hits" in
  let _misses = Metrics.counter "test.om_lookup_misses" in
  Metrics.reset ();
  Metrics.incr ~by:3 hits;
  let out = Openmetrics.render (Metrics.snapshot ()) in
  Alcotest.(check bool) "derived hit-rate gauge exposed" true
    (contains out "ckpt_test_om_lookup_hit_rate 1\n");
  Metrics.reset ()

let suite =
  [
    Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_round_trip;
    Alcotest.test_case "parse errors carry line numbers" `Quick
      test_parse_errors_carry_line_numbers;
    Alcotest.test_case "tree reconstruction" `Quick test_tree_reconstruction;
    Alcotest.test_case "self-time closure and hot ranking" `Quick
      test_self_time_closure_and_ranking;
    Alcotest.test_case "critical path" `Quick test_critical_path;
    Alcotest.test_case "multi-domain tracks stay separate" `Quick
      test_multi_domain_tracks;
    Alcotest.test_case "report rendering smoke" `Quick test_render_report_smoke;
    Alcotest.test_case "openmetrics exposition" `Quick test_openmetrics_exposition;
    Alcotest.test_case "openmetrics names and derived rows" `Quick
      test_openmetrics_hit_rate_and_names;
  ]

(* Tests for the platform first-failure distribution (superposition of
   p per-processor laws — Section 6, first difficulty). *)

module Law = Ckpt_dist.Law
module Superposition = Ckpt_dist.Superposition
module Rng = Ckpt_prng.Rng
module Welford = Ckpt_stats.Welford

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let test_exponential_superposition () =
  (* min of p Exp(lambda) = Exp(p lambda). *)
  let t = Superposition.fresh ~law:(Law.exponential ~rate:0.02) ~processors:10 in
  let platform = Law.exponential ~rate:0.2 in
  List.iter
    (fun x ->
      close ~tol:1e-12
        (Printf.sprintf "survival at %g" x)
        (Law.survival platform x) (Superposition.survival t x))
    [ 0.5; 2.0; 10.0; 40.0 ];
  close "mean = 1/(p lambda)" 5.0 (Superposition.mean t);
  close ~tol:1e-12 "hazard = p lambda" 0.2 (Superposition.hazard t 3.0)

let test_weibull_min_stability () =
  (* min of p Weibull(k, s) = Weibull(k, s p^(-1/k)). *)
  let shape = 0.7 and scale = 100.0 and p = 16 in
  let t = Superposition.fresh ~law:(Law.weibull ~shape ~scale) ~processors:p in
  match Superposition.as_weibull t with
  | None -> Alcotest.fail "expected a Weibull platform law"
  | Some platform ->
      close ~tol:1e-9 "closed-form scale"
        (scale *. (float_of_int p ** (-1.0 /. shape)))
        (match platform with Law.Weibull { scale; _ } -> scale | _ -> nan);
      List.iter
        (fun x ->
          close ~tol:1e-9
            (Printf.sprintf "survival identity at %g" x)
            (Law.survival platform x) (Superposition.survival t x))
        [ 0.1; 1.0; 5.0; 25.0 ];
      close ~tol:1e-6 "mean via closed form" (Law.mean platform) (Superposition.mean t)

let test_aged_platform () =
  (* With exponential processors, ages are irrelevant (memoryless). *)
  let law = Law.exponential ~rate:0.1 in
  let fresh = Superposition.fresh ~law ~processors:3 in
  let aged = Superposition.aged ~law ~ages:[| 0.0; 17.0; 400.0 |] in
  List.iter
    (fun x ->
      close ~tol:1e-12
        (Printf.sprintf "memoryless: ages irrelevant at %g" x)
        (Superposition.survival fresh x) (Superposition.survival aged x))
    [ 1.0; 5.0; 20.0 ];
  (* With Weibull shape < 1, older processors fail less: an aged
     platform survives longer. *)
  let weib = Law.weibull ~shape:0.5 ~scale:50.0 in
  let fresh_w = Superposition.fresh ~law:weib ~processors:3 in
  let aged_w = Superposition.aged ~law:weib ~ages:[| 100.0; 200.0; 300.0 |] in
  Alcotest.(check bool) "aged weibull platform is hardier" true
    (Superposition.survival aged_w 10.0 > Superposition.survival fresh_w 10.0)

let test_quantile_inverts () =
  let t =
    Superposition.aged ~law:(Law.weibull ~shape:1.5 ~scale:30.0)
      ~ages:[| 0.0; 5.0; 12.0; 40.0 |]
  in
  List.iter
    (fun p ->
      let x = Superposition.quantile t p in
      close ~tol:1e-6 (Printf.sprintf "cdf(quantile %g)" p) p (Superposition.cdf t x))
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_sampling_matches_survival () =
  let t =
    Superposition.aged ~law:(Law.weibull ~shape:0.7 ~scale:60.0) ~ages:[| 0.0; 30.0 |]
  in
  let rng = Rng.create ~seed:2121L in
  let n = 100_000 in
  let below_m = ref 0 in
  let acc = Welford.create () in
  let median = Superposition.quantile t 0.5 in
  for _ = 1 to n do
    let x = Superposition.sample t rng in
    Welford.add acc x;
    if x <= median then incr below_m
  done;
  close ~tol:0.01 "empirical median probability" 0.5
    (float_of_int !below_m /. float_of_int n);
  let mean = Superposition.mean t in
  Alcotest.(check bool)
    (Printf.sprintf "empirical mean %.3f vs numeric %.3f" (Welford.mean acc) mean)
    true
    (Float.abs (Welford.mean acc -. mean) < 0.02 *. mean)

let test_validation () =
  Alcotest.check_raises "processors > 0"
    (Invalid_argument "Superposition.fresh: processors must be positive") (fun () ->
      ignore (Superposition.fresh ~law:(Law.exponential ~rate:1.0) ~processors:0));
  Alcotest.check_raises "ages non-negative"
    (Invalid_argument "Superposition.aged: negative age") (fun () ->
      ignore (Superposition.aged ~law:(Law.exponential ~rate:1.0) ~ages:[| -1.0 |]))

let suite =
  [
    Alcotest.test_case "exponential superposition" `Quick test_exponential_superposition;
    Alcotest.test_case "weibull min-stability" `Quick test_weibull_min_stability;
    Alcotest.test_case "aged platforms" `Quick test_aged_platform;
    Alcotest.test_case "quantile inverts cdf" `Quick test_quantile_inverts;
    Alcotest.test_case "sampling matches survival" `Slow test_sampling_matches_survival;
    Alcotest.test_case "validation" `Quick test_validation;
  ]

(* Cross-cutting invariants that tie the analytic layer, the DP and the
   simulator together. The flagship property is dimensional consistency:
   rescaling every duration by s and the failure rate by 1/s rescales
   every expectation by s and every variance by s², and leaves optimal
   placements untouched. *)

module Task = Ckpt_dag.Task
module Expected_time = Ckpt_core.Expected_time
module Chain_problem = Ckpt_core.Chain_problem
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Law = Ckpt_dist.Law
module Superposition = Ckpt_dist.Superposition

let rel_close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b)

let params_gen =
  QCheck.(
    pair
      (quad (float_range 0.5 50.0) (float_range 0.0 5.0) (float_range 0.0 5.0)
         (float_range 0.0 5.0))
      (pair (float_range 1e-4 0.5) (float_range 0.1 100.0)))

let qcheck_rescaling_expectation =
  QCheck.Test.make ~name:"E(sW, sC, sD, sR, lambda/s) = s E(W, C, D, R, lambda)" ~count:500
    params_gen
    (fun ((w, c, d, r), (l, s)) ->
      let base = Expected_time.expected_v ~work:w ~checkpoint:c ~downtime:d ~recovery:r ~lambda:l in
      let scaled =
        Expected_time.expected_v ~work:(s *. w) ~checkpoint:(s *. c) ~downtime:(s *. d)
          ~recovery:(s *. r) ~lambda:(l /. s)
      in
      rel_close scaled (s *. base))

let qcheck_rescaling_variance =
  QCheck.Test.make ~name:"variance rescales as s^2" ~count:300 params_gen
    (fun ((w, c, d, r), (l, s)) ->
      let p = Expected_time.make ~downtime:d ~recovery:r ~work:w ~checkpoint:c ~lambda:l () in
      let ps =
        Expected_time.make ~downtime:(s *. d) ~recovery:(s *. r) ~work:(s *. w)
          ~checkpoint:(s *. c) ~lambda:(l /. s) ()
      in
      (* Var = E(T²) − E(T)² cancels two nearly equal numbers when
         λ(W+C) is small, so the achievable accuracy is relative to the
         mean squared, not to the (possibly tiny) variance itself. *)
      let mean_s = Expected_time.expected ps in
      let tolerance = 1e-9 *. Float.max 1.0 (mean_s *. mean_s) in
      Float.abs (Expected_time.variance ps -. (s *. s *. Expected_time.variance p))
      <= tolerance)

let random_chain seed n =
  let rng = Ckpt_prng.Rng.create ~seed:(Int64.of_int seed) in
  List.init n (fun i ->
      Task.make ~id:i
        ~work:(Ckpt_prng.Rng.float_range rng 0.5 8.0)
        ~checkpoint_cost:(Ckpt_prng.Rng.float_range rng 0.0 1.5)
        ~recovery_cost:(Ckpt_prng.Rng.float_range rng 0.0 2.0)
        ())

let scale_task s (t : Task.t) =
  Task.make ~id:t.Task.id ~name:t.Task.name ~work:(s *. t.Task.work)
    ~checkpoint_cost:(s *. t.Task.checkpoint_cost)
    ~recovery_cost:(s *. t.Task.recovery_cost) ()

let qcheck_rescaling_chain_dp =
  QCheck.Test.make ~name:"chain DP: rescaling preserves the optimal placement" ~count:60
    QCheck.(triple (int_range 1 12) (int_range 0 10_000) (float_range 0.2 20.0))
    (fun (n, seed, s) ->
      let tasks = random_chain seed n in
      let lambda = 0.08 in
      let base = Chain_problem.make ~downtime:0.4 ~initial_recovery:0.6 ~lambda tasks in
      let scaled =
        Chain_problem.make ~downtime:(0.4 *. s) ~initial_recovery:(0.6 *. s)
          ~lambda:(lambda /. s) (List.map (scale_task s) tasks)
      in
      let sol = Chain_dp.solve base and sol_s = Chain_dp.solve scaled in
      rel_close sol_s.Chain_dp.expected_makespan (s *. sol.Chain_dp.expected_makespan)
      && Schedule.checkpoint_indices sol.Chain_dp.schedule
         = Schedule.checkpoint_indices sol_s.Chain_dp.schedule)

let qcheck_schedule_monotone_in_lambda =
  QCheck.Test.make ~name:"any fixed placement: E(T) increases with lambda" ~count:100
    QCheck.(quad (int_range 1 10) (int_range 0 5000) (float_range 1e-3 0.2)
              (float_range 1e-4 0.2))
    (fun (n, seed, l, dl) ->
      let tasks = random_chain seed n in
      let base = Chain_problem.make ~downtime:0.2 ~lambda:l tasks in
      let bumped = Chain_problem.with_lambda base (l +. dl) in
      let mask = seed land ((1 lsl n) - 1) in
      let placement = Array.init n (fun i -> i = n - 1 || mask land (1 lsl i) <> 0) in
      Schedule.expected_makespan (Schedule.make base placement)
      <= Schedule.expected_makespan (Schedule.make bumped placement) +. 1e-9)

let qcheck_dp_value_monotone_in_lambda =
  QCheck.Test.make ~name:"optimal expectation increases with lambda" ~count:100
    QCheck.(quad (int_range 1 10) (int_range 0 5000) (float_range 1e-3 0.2)
              (float_range 1e-4 0.2))
    (fun (n, seed, l, dl) ->
      let tasks = random_chain seed n in
      let base = Chain_problem.make ~downtime:0.2 ~lambda:l tasks in
      let bumped = Chain_problem.with_lambda base (l +. dl) in
      (Chain_dp.solve base).Chain_dp.expected_makespan
      <= (Chain_dp.solve bumped).Chain_dp.expected_makespan +. 1e-9)

let qcheck_superposition_single_is_base =
  QCheck.Test.make ~name:"superposition of one fresh processor is the base law" ~count:200
    QCheck.(pair (int_range 0 2) (float_range 0.1 30.0))
    (fun (which, x) ->
      let law =
        match which with
        | 0 -> Law.exponential ~rate:0.07
        | 1 -> Law.weibull ~shape:0.8 ~scale:12.0
        | _ -> Law.log_normal ~mu:1.0 ~sigma:0.7
      in
      let t = Superposition.fresh ~law ~processors:1 in
      rel_close (Superposition.survival t x) (Law.survival law x))

let qcheck_dp_dominated_by_random_placements =
  (* The DP value is a lower bound on the expectation of 16 random
     placements (weak but broad safety net across random instances). *)
  QCheck.Test.make ~name:"DP value lower-bounds random placements" ~count:60
    QCheck.(pair (int_range 2 14) (int_range 0 100_000))
    (fun (n, seed) ->
      let tasks = random_chain seed n in
      let problem = Chain_problem.make ~downtime:0.3 ~lambda:0.05 tasks in
      let dp = (Chain_dp.solve problem).Chain_dp.expected_makespan in
      let rng = Ckpt_prng.Rng.create ~seed:(Int64.of_int (seed + 7)) in
      List.for_all
        (fun _ ->
          let placement =
            Array.init n (fun i -> i = n - 1 || Ckpt_prng.Rng.bool rng)
          in
          Schedule.expected_makespan (Schedule.make problem placement) >= dp -. 1e-9)
        (List.init 16 Fun.id))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_rescaling_expectation;
    QCheck_alcotest.to_alcotest qcheck_rescaling_variance;
    QCheck_alcotest.to_alcotest qcheck_rescaling_chain_dp;
    QCheck_alcotest.to_alcotest qcheck_schedule_monotone_in_lambda;
    QCheck_alcotest.to_alcotest qcheck_dp_value_monotone_in_lambda;
    QCheck_alcotest.to_alcotest qcheck_superposition_single_is_base;
    QCheck_alcotest.to_alcotest qcheck_dp_dominated_by_random_placements;
  ]

(* Tests for the divisible (periodic) checkpointing module. *)

module Divisible = Ckpt_core.Divisible
module Approximations = Ckpt_core.Approximations
module Expected_time = Ckpt_core.Expected_time

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let sample = Divisible.make ~downtime:1.0 ~recovery:5.0 ~total_work:1000.0 ~checkpoint:5.0
    ~lambda:0.001 ()

let test_chunks_of_period () =
  Alcotest.(check int) "round(1000/100)" 10 (Divisible.chunks_of_period sample ~tau:100.0);
  Alcotest.(check int) "round(1000/300)" 3 (Divisible.chunks_of_period sample ~tau:300.0);
  Alcotest.(check int) "at least one chunk" 1
    (Divisible.chunks_of_period sample ~tau:1e9)

let test_expected_with_period_matches_chunks () =
  let direct =
    Approximations.expected_divisible ~total_work:1000.0 ~chunks:10 ~checkpoint:5.0
      ~downtime:1.0 ~recovery:5.0 ~lambda:0.001
  in
  close "period 100 = 10 chunks" direct (Divisible.expected_with_period sample ~tau:100.0)

let test_optimal_beats_young_beats_nothing () =
  let opt = Divisible.optimal sample in
  let young = Divisible.young sample in
  let daly = Divisible.daly sample in
  let single = Divisible.expected_with_period sample ~tau:1e9 in
  Alcotest.(check bool) "optimal <= young" true
    (opt.Approximations.expected_total <= young.Approximations.expected_total +. 1e-9);
  Alcotest.(check bool) "optimal <= daly" true
    (opt.Approximations.expected_total <= daly.Approximations.expected_total +. 1e-9);
  Alcotest.(check bool) "young well below no-checkpointing" true
    (young.Approximations.expected_total < 0.9 *. single);
  (* In this regime, Young/Daly are near-optimal (within 1%). *)
  Alcotest.(check bool) "young within 1% of optimal" true
    (young.Approximations.expected_total <= 1.01 *. opt.Approximations.expected_total)

let test_waste_fraction () =
  let opt = Divisible.optimal sample in
  let waste = Divisible.waste_fraction sample ~chunks:opt.Approximations.chunks in
  Alcotest.(check bool) "waste in (0, 0.5)" true (waste > 0.0 && waste < 0.5);
  (* Consistency: waste = 1 - W/E. *)
  close "definition" waste
    (1.0 -. (1000.0 /. opt.Approximations.expected_total))

let test_breakdown_sums () =
  let b = Divisible.breakdown sample ~chunks:10 in
  let total = Divisible.expected_with_period sample ~tau:100.0 in
  close ~tol:1e-12 "breakdown sums to total"
    total
    (b.Expected_time.useful +. b.Expected_time.checkpoint +. b.Expected_time.lost
     +. b.Expected_time.restore);
  close "useful work preserved" 1000.0 b.Expected_time.useful

let test_period_sensitivity_shape () =
  (* The sensitivity curve is >= 1 with equality at factor 1, and in
     this regime overestimating the period hurts less than
     underestimating it by the same large factor (fewer checkpoints vs
     lots of extra checkpoints at small lambda... actually the
     asymmetric penalty direction depends on the regime; we check the
     robust property: factor 1 is the argmin). *)
  let sensitivity = Divisible.period_sensitivity sample ~factors:[ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  List.iter
    (fun (f, ratio) ->
      Alcotest.(check bool)
        (Printf.sprintf "ratio at %gx >= 1" f)
        true (ratio >= 1.0 -. 1e-9))
    sensitivity;
  let at_one = List.assoc 1.0 sensitivity in
  close "factor 1 is the optimum" 1.0 at_one

let suite =
  [
    Alcotest.test_case "chunks of period" `Quick test_chunks_of_period;
    Alcotest.test_case "period = chunk segmentation" `Quick
      test_expected_with_period_matches_chunks;
    Alcotest.test_case "optimal vs young/daly vs none" `Quick
      test_optimal_beats_young_beats_nothing;
    Alcotest.test_case "waste fraction" `Quick test_waste_fraction;
    Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums;
    Alcotest.test_case "period sensitivity shape" `Quick test_period_sensitivity_shape;
  ]

(* Tests for the independent-task heuristics. *)

module Task = Ckpt_dag.Task
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule
module Independent = Ckpt_core.Independent
module Brute_force = Ckpt_core.Brute_force

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let sample_problem () =
  Independent.uniform ~lambda:0.08 ~checkpoint:0.7 ~recovery:0.7
    [ 4.0; 2.0; 6.0; 1.0; 3.0; 5.0 ]

let test_construction () =
  let p = sample_problem () in
  Alcotest.(check int) "task count" 6 (Array.length p.Independent.tasks);
  close "uniform sets initial recovery" 0.7 p.Independent.initial_recovery;
  Alcotest.check_raises "empty rejected" (Invalid_argument "Independent.make: empty task list")
    (fun () -> ignore (Independent.make ~lambda:0.1 []))

let test_chain_of_permutation_check () =
  let p = sample_problem () in
  let tasks = p.Independent.tasks in
  let valid = [ tasks.(2); tasks.(0); tasks.(1); tasks.(3); tasks.(4); tasks.(5) ] in
  let chain = Independent.chain_of p valid in
  close "chain keeps total work" 21.0 (Ckpt_core.Chain_problem.total_work chain);
  Alcotest.check_raises "duplicate task rejected"
    (Invalid_argument "Independent.chain_of: not a permutation of the tasks") (fun () ->
      ignore
        (Independent.chain_of p [ tasks.(0); tasks.(0); tasks.(1); tasks.(3); tasks.(4); tasks.(5) ]))

let test_orderings () =
  let p = sample_problem () in
  let shortest = Independent.order_tasks p Independent.Shortest_first in
  let works = List.map (fun (t : Task.t) -> t.Task.work) shortest in
  Alcotest.(check bool) "shortest first sorted" true (works = List.sort compare works);
  let longest = Independent.order_tasks p Independent.Longest_first in
  let works_l = List.map (fun (t : Task.t) -> t.Task.work) longest in
  Alcotest.(check bool) "longest first sorted" true
    (works_l = List.sort (fun a b -> compare b a) works_l);
  let r1 = Independent.order_tasks p (Independent.Random 1) in
  let r1' = Independent.order_tasks p (Independent.Random 1) in
  Alcotest.(check bool) "random ordering deterministic per salt" true (r1 = r1');
  (* All orderings are permutations. *)
  List.iter
    (fun ordering ->
      let ids =
        List.sort compare
          (List.map (fun (t : Task.t) -> t.Task.id) (Independent.order_tasks p ordering))
      in
      Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3; 4; 5 ] ids)
    [ Independent.As_given; Independent.Shortest_first; Independent.Longest_first;
      Independent.Random 7 ]

let test_ordering_irrelevant_for_uniform_costs () =
  (* With uniform costs the expectation depends only on the partition
     into segments, so the optimal placement cost is the same for any
     fixed ordering of the same multiset (here: orders differing only by
     a swap inside a segment structure found by the DP would tie; we
     check the weaker but exact statement that order-then-place on any
     order is bounded below by the partition optimum). *)
  let p = sample_problem () in
  let partition_opt =
    Brute_force.partition_best ~lambda:0.08 ~checkpoint:0.7 ~recovery:0.7 ~downtime:0.0
      (Array.map (fun (t : Task.t) -> t.Task.work) p.Independent.tasks)
  in
  List.iter
    (fun ordering ->
      let sol = Independent.solve_ordered p ordering in
      Alcotest.(check bool) "ordered >= partition optimum" true
        (sol.Chain_dp.expected_makespan >= partition_opt -. 1e-9))
    [ Independent.As_given; Independent.Shortest_first; Independent.Longest_first ]

let test_best_ordered () =
  let p = sample_problem () in
  let orderings =
    [ Independent.As_given; Independent.Shortest_first; Independent.Longest_first;
      Independent.Random 3 ]
  in
  let _, best = Independent.best_ordered p orderings in
  List.iter
    (fun ordering ->
      let sol = Independent.solve_ordered p ordering in
      Alcotest.(check bool) "best_ordered is minimal" true
        (best.Chain_dp.expected_makespan <= sol.Chain_dp.expected_makespan +. 1e-12))
    orderings

let test_lpt_grouping_balance () =
  (* LPT into 2 groups of works [6;5;4;3;2;1]: classic balance 10/11. *)
  let p = sample_problem () in
  let sol = Independent.lpt_grouping p ~groups:2 in
  (* The DP re-optimises, so we can only assert feasibility + quality. *)
  Alcotest.(check bool) "positive makespan" true (sol.Chain_dp.expected_makespan > 0.0);
  let partition_opt =
    Brute_force.partition_best ~lambda:0.08 ~checkpoint:0.7 ~recovery:0.7 ~downtime:0.0
      (Array.map (fun (t : Task.t) -> t.Task.work) p.Independent.tasks)
  in
  Alcotest.(check bool) "within 10% of optimum on this instance" true
    (sol.Chain_dp.expected_makespan <= 1.10 *. partition_opt)

let test_auto_grouping_near_optimal () =
  let p = sample_problem () in
  let sol = Independent.auto_grouping p in
  let partition_opt =
    Brute_force.partition_best ~lambda:0.08 ~checkpoint:0.7 ~recovery:0.7 ~downtime:0.0
      (Array.map (fun (t : Task.t) -> t.Task.work) p.Independent.tasks)
  in
  Alcotest.(check bool) "auto grouping within 10% of optimum" true
    (sol.Chain_dp.expected_makespan <= 1.10 *. partition_opt)

let test_groups_capped_at_n () =
  let p = Independent.uniform ~lambda:0.1 ~checkpoint:0.1 ~recovery:0.1 [ 1.0; 2.0 ] in
  let sol = Independent.lpt_grouping p ~groups:10 in
  Alcotest.(check bool) "works with groups > n" true (sol.Chain_dp.expected_makespan > 0.0)

let qcheck_heuristics_above_optimum =
  QCheck.Test.make ~name:"heuristics never beat the exact optimum" ~count:30
    QCheck.(pair (list_of_size (Gen.int_range 2 7) (float_range 1.0 8.0))
              (float_range 0.02 0.25))
    (fun (works, lambda) ->
      let p = Independent.uniform ~lambda ~checkpoint:0.5 ~recovery:0.5 works in
      let opt =
        Brute_force.partition_best ~lambda ~checkpoint:0.5 ~recovery:0.5 ~downtime:0.0
          (Array.of_list works)
      in
      let sols =
        [ Independent.solve_ordered p Independent.Longest_first;
          Independent.lpt_grouping p ~groups:2; Independent.auto_grouping p ]
      in
      List.for_all
        (fun (s : Chain_dp.solution) -> s.Chain_dp.expected_makespan >= opt -. 1e-9)
        sols)

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "chain_of permutation check" `Quick test_chain_of_permutation_check;
    Alcotest.test_case "orderings" `Quick test_orderings;
    Alcotest.test_case "uniform costs: partition lower bound" `Quick
      test_ordering_irrelevant_for_uniform_costs;
    Alcotest.test_case "best_ordered minimality" `Quick test_best_ordered;
    Alcotest.test_case "LPT grouping quality" `Quick test_lpt_grouping_balance;
    Alcotest.test_case "auto grouping quality" `Quick test_auto_grouping_near_optimal;
    Alcotest.test_case "groups capped at n" `Quick test_groups_capped_at_n;
    QCheck_alcotest.to_alcotest qcheck_heuristics_above_optimum;
  ]

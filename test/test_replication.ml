(* Tests for group replication ([16]/[29]/[30] related-work thread). *)

module Moldable = Ckpt_core.Moldable
module Replication = Ckpt_core.Replication
module Welford = Ckpt_stats.Welford
module Rng = Ckpt_prng.Rng

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let mk ?(groups = 2) ?(proc_rate = 1e-5) () =
  Replication.config ~downtime:5.0 ~total_work:100_000.0
    ~checkpoint:(Moldable.Constant 60.0) ~proc_rate ~processors:512 ~groups ()

let test_validation () =
  Alcotest.check_raises "groups must divide processors"
    (Invalid_argument "Replication.config: groups must divide processors") (fun () ->
      ignore
        (Replication.config ~total_work:1.0 ~checkpoint:(Moldable.Constant 1.0)
           ~proc_rate:1e-5 ~processors:10 ~groups:3 ()));
  Alcotest.(check int) "group size" 256 (Replication.group_size (mk ()))

let test_success_probability () =
  let t = mk () in
  (* q per group, then 1 - (1-q)^2. *)
  let work = 1000.0 /. 256.0 in
  let q = exp (-.(256.0 *. 1e-5) *. (work +. 60.0)) in
  close "two-group survival" (1.0 -. ((1.0 -. q) ** 2.0))
    (Replication.round_success_probability t ~chunk_work:1000.0);
  (* More groups, higher success probability per round. *)
  let p1 = Replication.round_success_probability (mk ~groups:1 ()) ~chunk_work:1000.0 in
  let p4 = Replication.round_success_probability (mk ~groups:4 ()) ~chunk_work:1000.0 in
  Alcotest.(check bool) "g=4 beats g=1 per round" true (p4 > p1)

let test_expected_chunk_formula () =
  let t = mk () in
  let chunk_work = 2000.0 in
  let work = chunk_work /. 256.0 in
  let ps = Replication.round_success_probability t ~chunk_work in
  let reference =
    ((work +. 60.0) /. ps) +. ((5.0 +. 60.0) *. ((1.0 /. ps) -. 1.0))
  in
  close "closed form" reference (Replication.expected_chunk t ~chunk_work)

let test_simulation_matches_closed_form () =
  let t = mk ~proc_rate:1e-4 () in
  let chunks = 20 in
  let analytic = Replication.expected_total t ~chunks in
  let acc = Replication.simulate_total t ~chunks ~runs:20_000 (Rng.create ~seed:55L) in
  let lo, hi = Welford.confidence_interval acc ~level:0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.2f in CI [%.2f, %.2f]" analytic lo hi)
    true
    (lo <= analytic && analytic <= hi)

let test_optimal_chunks_is_argmin_nearby () =
  let t = mk ~proc_rate:1e-4 () in
  let m_star, value = Replication.optimal_chunks t in
  for m = Stdlib.max 1 (m_star - 3) to m_star + 3 do
    Alcotest.(check bool)
      (Printf.sprintf "m*=%d beats m=%d" m_star m)
      true
      (value <= Replication.expected_total t ~chunks:m +. 1e-9)
  done

let test_replication_crossover () =
  (* At low failure rates duplication wastes half the machine; at very
     high rates it wins. Compare g=1 vs g=2, each at its own optimal
     chunking. *)
  let total g proc_rate = snd (Replication.optimal_chunks (mk ~groups:g ~proc_rate ())) in
  Alcotest.(check bool) "rare failures: no replication wins" true
    (total 1 1e-6 < total 2 1e-6);
  Alcotest.(check bool) "frequent failures: replication wins" true
    (total 2 1e-4 < total 1 1e-4);
  (* And more groups help further as failures intensify. *)
  Alcotest.(check bool) "very frequent failures: g=4 beats g=2" true
    (total 4 3e-4 < total 2 3e-4)

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "round success probability" `Quick test_success_probability;
    Alcotest.test_case "expected chunk formula" `Quick test_expected_chunk_formula;
    Alcotest.test_case "simulation matches closed form" `Slow
      test_simulation_matches_closed_form;
    Alcotest.test_case "optimal chunk count" `Quick test_optimal_chunks_is_argmin_nearby;
    Alcotest.test_case "replication crossover" `Quick test_replication_crossover;
  ]

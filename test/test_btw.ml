(* Tests for the Bouguerra-Trystram-Wagner saved-work objective. *)

module Law = Ckpt_dist.Law
module Chain_problem = Ckpt_core.Chain_problem
module Schedule = Ckpt_core.Schedule
module Btw = Ckpt_core.Btw
module Rng = Ckpt_prng.Rng

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let int_problem works =
  Chain_problem.uniform ~lambda:0.1 ~checkpoint:1.0 ~recovery:1.0
    (List.map float_of_int works)

let test_objective_value () =
  (* Exponential law: objective = sum W_k e^(-lambda t_k), computable by
     hand. Works [3;4], checkpoint 1, single checkpoint at the end:
     saved = 7 * e^(-0.2 * 8). *)
  let problem = int_problem [ 3; 4 ] in
  let law = Law.exponential ~rate:0.2 in
  let none = Schedule.checkpoint_none problem in
  close "single segment" (7.0 *. exp (-0.2 *. 8.0)) (Btw.expected_saved_work ~law none);
  (* Checkpoint after both: 3 e^(-0.2*4) + 4 e^(-0.2*9). *)
  let all = Schedule.checkpoint_all problem in
  close "two segments"
    ((3.0 *. exp (-0.2 *. 4.0)) +. (4.0 *. exp (-0.2 *. 9.0)))
    (Btw.expected_saved_work ~law all)

let test_deterministic_law_objective () =
  (* Failure exactly at t = 9: only segments checkpointed strictly
     before 9 are saved. Works [3;4], C=1: checkpoint-all finishes
     segment 1 at 4 (< 9, saved) and segment 2 at 9 (not < 9 since
     survival(9) = 0). *)
  let problem = int_problem [ 3; 4 ] in
  let law = Law.deterministic 9.0 in
  close "only the early segment survives" 3.0
    (Btw.expected_saved_work ~law (Schedule.checkpoint_all problem))

let test_exhaustive_vs_pseudo_polynomial () =
  let law = Law.weibull ~shape:0.8 ~scale:15.0 in
  List.iter
    (fun works ->
      let problem = int_problem works in
      let _, exhaustive = Btw.exhaustive_best ~law problem in
      let _, pseudo = Btw.pseudo_polynomial_best ~law problem in
      close
        (Printf.sprintf "agreement on %d tasks" (List.length works))
        exhaustive pseudo)
    [ [ 5 ]; [ 3; 4 ]; [ 2; 7; 1; 5 ]; [ 1; 2; 3; 4; 5; 6 ]; [ 9; 9; 9; 9 ] ]

let test_pseudo_polynomial_requires_integers () =
  let problem =
    Chain_problem.uniform ~lambda:0.1 ~checkpoint:0.5 ~recovery:0.5 [ 1.5; 2.0 ]
  in
  match Btw.pseudo_polynomial_best ~law:(Law.exponential ~rate:0.1) problem with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of non-integer durations"

let test_greedy_feasible_and_bounded () =
  let law = Law.log_normal_of_mean ~sigma:1.0 ~mean:30.0 in
  let problem = int_problem [ 4; 6; 2; 8; 3; 5; 7 ] in
  let _, exact = Btw.exhaustive_best ~law problem in
  let _, greedy_value = Btw.greedy ~law problem in
  Alcotest.(check bool) "greedy below exact" true (greedy_value <= exact +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.4f within 20%% of exact %.4f" greedy_value exact)
    true
    (greedy_value >= 0.8 *. exact)

let qcheck_exhaustive_matches_pseudo =
  QCheck.Test.make ~name:"BTW pseudo-polynomial DP equals exhaustive optimum" ~count:40
    QCheck.(pair (list_of_size (Gen.int_range 1 7) (int_range 1 9)) (int_range 0 2))
    (fun (works, law_idx) ->
      let law =
        match law_idx with
        | 0 -> Law.exponential ~rate:0.07
        | 1 -> Law.uniform ~lo:0.0 ~hi:60.0
        | _ -> Law.weibull ~shape:0.6 ~scale:25.0
      in
      let problem = int_problem works in
      let _, a = Btw.exhaustive_best ~law problem in
      let _, b = Btw.pseudo_polynomial_best ~law problem in
      Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 a)

let qcheck_saved_work_bounded_by_total =
  QCheck.Test.make ~name:"saved work never exceeds total work" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 1 10) (int_range 1 9)) (int_range 0 255))
    (fun (works, mask) ->
      let problem = int_problem works in
      let n = List.length works in
      let placement = Array.init n (fun i -> i = n - 1 || mask land (1 lsl i) <> 0) in
      let schedule = Schedule.make problem placement in
      let law = Law.weibull ~shape:0.7 ~scale:20.0 in
      let saved = Btw.expected_saved_work ~law schedule in
      saved >= 0.0 && saved <= Chain_problem.total_work problem +. 1e-9)

let suite =
  [
    Alcotest.test_case "objective value" `Quick test_objective_value;
    Alcotest.test_case "deterministic-law objective" `Quick test_deterministic_law_objective;
    Alcotest.test_case "exhaustive = pseudo-polynomial" `Quick
      test_exhaustive_vs_pseudo_polynomial;
    Alcotest.test_case "integer validation" `Quick test_pseudo_polynomial_requires_integers;
    Alcotest.test_case "greedy quality" `Quick test_greedy_feasible_and_bounded;
    QCheck_alcotest.to_alcotest qcheck_exhaustive_matches_pseudo;
    QCheck_alcotest.to_alcotest qcheck_saved_work_bounded_by_total;
  ]

(* Tests for the probability laws. *)

module Law = Ckpt_dist.Law
module Rng = Ckpt_prng.Rng
module Welford = Ckpt_stats.Welford

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let all_laws =
  [
    ("exponential", Law.exponential ~rate:0.4);
    ("weibull<1", Law.weibull ~shape:0.7 ~scale:3.0);
    ("weibull>1", Law.weibull ~shape:2.5 ~scale:1.5);
    ("lognormal", Law.log_normal ~mu:0.3 ~sigma:0.8);
    ("uniform", Law.uniform ~lo:1.0 ~hi:4.0);
    ("gamma<1", Law.gamma ~shape:0.6 ~scale:2.0);
    ("gamma>1", Law.gamma ~shape:3.0 ~scale:0.7);
  ]

let test_validation () =
  let invalid = [
    Law.Exponential { rate = 0.0 };
    Law.Weibull { shape = -1.0; scale = 1.0 };
    Law.Weibull { shape = 1.0; scale = 0.0 };
    Law.Log_normal { mu = 0.0; sigma = 0.0 };
    Law.Uniform { lo = 3.0; hi = 2.0 };
    Law.Uniform { lo = -1.0; hi = 2.0 };
    Law.Gamma { shape = 0.0; scale = 1.0 };
    Law.Deterministic 0.0;
  ]
  in
  List.iter
    (fun law ->
      match Law.validate law with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "law %s should be invalid" (Law.to_string law)))
    invalid;
  match Law.validate (Law.Exponential { rate = 2.0 }) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_cdf_survival_complement () =
  List.iter
    (fun (name, law) ->
      List.iter
        (fun x ->
          close ~tol:1e-9
            (Printf.sprintf "%s: cdf + survival = 1 at %g" name x)
            1.0
            (Law.cdf law x +. Law.survival law x))
        [ 0.1; 0.5; 1.0; 2.0; 5.0; 10.0 ])
    all_laws

let test_pdf_is_cdf_derivative () =
  let h = 1e-6 in
  List.iter
    (fun (name, law) ->
      List.iter
        (fun x ->
          let numeric = (Law.cdf law (x +. h) -. Law.cdf law (x -. h)) /. (2.0 *. h) in
          close ~tol:1e-4
            (Printf.sprintf "%s: pdf matches numeric dCDF at %g" name x)
            numeric (Law.pdf law x))
        [ 0.5; 1.3; 2.7 ])
    all_laws

let test_quantile_inverts_cdf () =
  List.iter
    (fun (name, law) ->
      List.iter
        (fun p ->
          let x = Law.quantile law p in
          close ~tol:1e-6 (Printf.sprintf "%s: cdf(quantile %g)" name p) p (Law.cdf law x))
        [ 0.05; 0.25; 0.5; 0.75; 0.95; 0.999 ])
    all_laws

let sample_stats law n =
  let rng = Rng.create ~seed:2024L in
  let acc = Welford.create () in
  for _ = 1 to n do
    Welford.add acc (Law.sample law rng)
  done;
  acc

let test_sampling_moments () =
  List.iter
    (fun (name, law) ->
      let n = 200_000 in
      let acc = sample_stats law n in
      let tol_mean = 6.0 *. Welford.std_error acc in
      Alcotest.(check bool)
        (Printf.sprintf "%s: sample mean %.4f vs analytic %.4f" name (Welford.mean acc)
           (Law.mean law))
        true
        (Float.abs (Welford.mean acc -. Law.mean law) < Float.max tol_mean 1e-3);
      let rel_var =
        Float.abs (Welford.variance acc -. Law.variance law)
        /. Float.max 1e-9 (Law.variance law)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: sample variance within 5%%" name)
        true (rel_var < 0.05))
    all_laws

let test_sampling_ks () =
  (* Every sampler must pass a KS goodness-of-fit test against its own
     analytic CDF. *)
  let rng = Rng.create ~seed:11337L in
  List.iter
    (fun (name, law) ->
      let xs = Array.init 20_000 (fun _ -> Law.sample law rng) in
      Alcotest.(check bool)
        (Printf.sprintf "%s passes Kolmogorov-Smirnov" name)
        true
        (Ckpt_stats.Ks_test.test ~alpha:0.001 ~cdf:(Law.cdf law) xs))
    all_laws

let test_samples_positive () =
  let rng = Rng.create ~seed:5L in
  List.iter
    (fun (name, law) ->
      for _ = 1 to 10_000 do
        let x = Law.sample law rng in
        Alcotest.(check bool) (Printf.sprintf "%s sample positive" name) true (x > 0.0)
      done)
    all_laws

let test_deterministic () =
  let law = Law.deterministic 3.5 in
  let rng = Rng.create ~seed:1L in
  close "sample" 3.5 (Law.sample law rng);
  close "mean" 3.5 (Law.mean law);
  close "variance" 0.0 (Law.variance law);
  close "cdf below" 0.0 (Law.cdf law 3.0);
  close "cdf above" 1.0 (Law.cdf law 4.0);
  close "quantile" 3.5 (Law.quantile law 0.3);
  close "conditional remaining" 1.5
    (Law.conditional_remaining_sample law ~elapsed:2.0 rng)

let test_exponential_memoryless () =
  (* The conditional residual distribution equals the unconditional one:
     compare empirical means for elapsed = 0 and elapsed = 7. *)
  let law = Law.exponential ~rate:0.8 in
  let rng = Rng.create ~seed:77L in
  let acc0 = Welford.create () and acc7 = Welford.create () in
  for _ = 1 to 100_000 do
    Welford.add acc0 (Law.conditional_remaining_sample law ~elapsed:0.0 rng);
    Welford.add acc7 (Law.conditional_remaining_sample law ~elapsed:7.0 rng)
  done;
  Alcotest.(check bool) "memoryless residual mean" true
    (Float.abs (Welford.mean acc0 -. Welford.mean acc7) < 0.02)

let test_weibull_residual_depends_on_age () =
  (* Decreasing hazard (shape < 1): having survived for a while makes
     the residual life longer in expectation. *)
  let law = Law.weibull ~shape:0.5 ~scale:1.0 in
  let rng = Rng.create ~seed:88L in
  let young = Welford.create () and old = Welford.create () in
  for _ = 1 to 50_000 do
    Welford.add young (Law.conditional_remaining_sample law ~elapsed:0.01 rng);
    Welford.add old (Law.conditional_remaining_sample law ~elapsed:5.0 rng)
  done;
  Alcotest.(check bool) "older processor has longer residual life" true
    (Welford.mean old > 2.0 *. Welford.mean young)

let test_conditional_residual_distribution () =
  (* Empirical CDF of the residual matches the analytic conditional CDF. *)
  let law = Law.weibull ~shape:2.0 ~scale:3.0 in
  let elapsed = 2.0 in
  let rng = Rng.create ~seed:99L in
  let n = 100_000 in
  let samples = Array.init n (fun _ -> Law.conditional_remaining_sample law ~elapsed rng) in
  let analytic x =
    (Law.cdf law (elapsed +. x) -. Law.cdf law elapsed) /. Law.survival law elapsed
  in
  List.iter
    (fun x ->
      let empirical =
        float_of_int (Array.fold_left (fun acc s -> if s <= x then acc + 1 else acc) 0 samples)
        /. float_of_int n
      in
      close ~tol:0.01 (Printf.sprintf "residual CDF at %g" x) (analytic x) empirical)
    [ 0.5; 1.0; 2.0; 4.0 ]

let test_hazard_shapes () =
  let expo = Law.exponential ~rate:0.3 in
  close ~tol:1e-9 "exponential hazard constant" (Law.hazard expo 1.0) (Law.hazard expo 9.0);
  close ~tol:1e-9 "exponential hazard = rate" 0.3 (Law.hazard expo 2.0);
  let weib = Law.weibull ~shape:0.5 ~scale:2.0 in
  Alcotest.(check bool) "weibull shape<1 hazard decreasing" true
    (Law.hazard weib 0.5 > Law.hazard weib 2.0 && Law.hazard weib 2.0 > Law.hazard weib 8.0);
  let weib2 = Law.weibull ~shape:3.0 ~scale:2.0 in
  Alcotest.(check bool) "weibull shape>1 hazard increasing" true
    (Law.hazard weib2 0.5 < Law.hazard weib2 2.0)

let test_of_mean_constructors () =
  let w = Law.weibull_of_mean ~shape:0.7 ~mean:42.0 in
  close ~tol:1e-9 "weibull_of_mean" 42.0 (Law.mean w);
  let ln = Law.log_normal_of_mean ~sigma:1.2 ~mean:10.0 in
  close ~tol:1e-9 "log_normal_of_mean" 10.0 (Law.mean ln)

let test_mean_residual_life () =
  (* Exponential: MRL is constant 1/rate (memorylessness). *)
  let expo = Law.exponential ~rate:0.25 in
  close ~tol:1e-9 "exponential MRL at 0" 4.0 (Law.mean_residual_life expo ~elapsed:0.0);
  close ~tol:1e-9 "exponential MRL at 17" 4.0 (Law.mean_residual_life expo ~elapsed:17.0);
  (* Deterministic: the remaining time, then 0. *)
  let det = Law.deterministic 5.0 in
  close "deterministic MRL" 3.0 (Law.mean_residual_life det ~elapsed:2.0);
  close "deterministic MRL exhausted" 0.0 (Law.mean_residual_life det ~elapsed:6.0);
  (* Uniform on [2, 6]: at t=3, X | X>3 uniform on (3,6), MRL = 1.5. *)
  let unif = Law.uniform ~lo:2.0 ~hi:6.0 in
  close ~tol:1e-9 "uniform MRL inside support" 1.5 (Law.mean_residual_life unif ~elapsed:3.0);
  close ~tol:1e-9 "uniform MRL before support is the mean" 4.0
    (Law.mean_residual_life unif ~elapsed:0.0);
  (* At elapsed 0 the MRL is the mean, for every law. *)
  List.iter
    (fun (name, law) ->
      close ~tol:1e-5 (Printf.sprintf "%s: MRL(0) = mean" name) (Law.mean law)
        (Law.mean_residual_life law ~elapsed:0.0))
    all_laws

let test_mrl_monotonicity_with_hazard () =
  (* Decreasing hazard => increasing MRL, and conversely. *)
  let weib_low = Law.weibull ~shape:0.6 ~scale:5.0 in
  Alcotest.(check bool) "shape<1: MRL grows with age" true
    (Law.mean_residual_life weib_low ~elapsed:10.0
     > Law.mean_residual_life weib_low ~elapsed:1.0);
  let weib_high = Law.weibull ~shape:2.5 ~scale:5.0 in
  Alcotest.(check bool) "shape>1: MRL shrinks with age" true
    (Law.mean_residual_life weib_high ~elapsed:10.0
     < Law.mean_residual_life weib_high ~elapsed:1.0)

let test_mrl_against_sampling () =
  (* Numeric integral vs the conditional sampler, for a heavy tail. *)
  let law = Law.log_normal ~mu:0.5 ~sigma:1.2 in
  let elapsed = 3.0 in
  let rng = Rng.create ~seed:360L in
  let acc = Welford.create () in
  for _ = 1 to 200_000 do
    Welford.add acc (Law.conditional_remaining_sample law ~elapsed rng)
  done;
  let numeric = Law.mean_residual_life law ~elapsed in
  let rel = Float.abs (Welford.mean acc -. numeric) /. numeric in
  Alcotest.(check bool)
    (Printf.sprintf "MRL %.4f vs sampled %.4f" numeric (Welford.mean acc))
    true (rel < 0.03)

let qcheck_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in p" ~count:300
    QCheck.(triple (int_range 0 6) (float_range 0.001 0.998) (float_range 0.000001 0.001))
    (fun (law_idx, p, dp) ->
      let _, law = List.nth all_laws law_idx in
      Law.quantile law p <= Law.quantile law (p +. dp) +. 1e-12)

let qcheck_cdf_monotone =
  QCheck.Test.make ~name:"cdf is monotone" ~count:300
    QCheck.(triple (int_range 0 6) (float_range 0.0 20.0) (float_range 0.0 5.0))
    (fun (law_idx, x, dx) ->
      let _, law = List.nth all_laws law_idx in
      Law.cdf law x <= Law.cdf law (x +. dx) +. 1e-12)

let suite =
  [
    Alcotest.test_case "parameter validation" `Quick test_validation;
    Alcotest.test_case "cdf + survival = 1" `Quick test_cdf_survival_complement;
    Alcotest.test_case "pdf is the cdf derivative" `Quick test_pdf_is_cdf_derivative;
    Alcotest.test_case "quantile inverts cdf" `Quick test_quantile_inverts_cdf;
    Alcotest.test_case "sampling moments" `Slow test_sampling_moments;
    Alcotest.test_case "sampling KS goodness-of-fit" `Slow test_sampling_ks;
    Alcotest.test_case "samples positive" `Quick test_samples_positive;
    Alcotest.test_case "deterministic law" `Quick test_deterministic;
    Alcotest.test_case "exponential memorylessness" `Slow test_exponential_memoryless;
    Alcotest.test_case "weibull residual vs age" `Slow test_weibull_residual_depends_on_age;
    Alcotest.test_case "conditional residual distribution" `Slow
      test_conditional_residual_distribution;
    Alcotest.test_case "hazard shapes" `Quick test_hazard_shapes;
    Alcotest.test_case "of-mean constructors" `Quick test_of_mean_constructors;
    Alcotest.test_case "mean residual life" `Quick test_mean_residual_life;
    Alcotest.test_case "MRL vs hazard direction" `Quick test_mrl_monotonicity_with_hazard;
    Alcotest.test_case "MRL vs conditional sampling" `Slow test_mrl_against_sampling;
    QCheck_alcotest.to_alcotest qcheck_quantile_monotone;
    QCheck_alcotest.to_alcotest qcheck_cdf_monotone;
  ]

(* Tests for moldable-task chains (Section 6, second extension). *)

module Moldable = Ckpt_core.Moldable
module Moldable_chain = Ckpt_core.Moldable_chain
module Chain_dp = Ckpt_core.Chain_dp
module Schedule = Ckpt_core.Schedule

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let mk ?(workload = Moldable.Perfectly_parallel) ?(volume = Moldable.Constant 5.0) work =
  Moldable_chain.task ~workload ~total_work:work ~checkpoint:volume ()

let sample_problem ?candidates () =
  Moldable_chain.problem ?candidates ~downtime:1.0 ~initial_recovery:2.0
    ~max_processors:256 ~proc_rate:1e-5
    [ mk 4000.0; mk 12000.0; mk ~workload:(Moldable.Amdahl 0.01) 8000.0;
      mk ~volume:(Moldable.Proportional 40.0) 6000.0 ]

let test_validation () =
  Alcotest.check_raises "empty chain"
    (Invalid_argument "Moldable_chain.problem: empty chain") (fun () ->
      ignore (Moldable_chain.problem ~max_processors:4 ~proc_rate:1e-4 []));
  Alcotest.check_raises "bad candidate"
    (Invalid_argument "Moldable_chain.problem: candidate out of range") (fun () ->
      ignore
        (Moldable_chain.problem ~candidates:[ 8 ] ~max_processors:4 ~proc_rate:1e-4
           [ mk 10.0 ]))

let test_candidates_default () =
  let p = sample_problem () in
  Alcotest.(check (list int)) "powers of two up to P"
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]
    p.Moldable_chain.candidates

let test_single_allocation_equals_chain_dp () =
  (* Restricting to one candidate must reproduce the rigid-chain DP. *)
  let p = sample_problem ~candidates:[ 64 ] () in
  let moldable = Moldable_chain.solve p in
  let rigid = Moldable_chain.solve_fixed_allocation p ~processors:64 in
  close "moldable DP = rigid DP at a forced allocation"
    rigid.Chain_dp.expected_makespan moldable.Moldable_chain.expected_makespan;
  (* And all segments use the only allowed allocation. *)
  List.iter
    (fun (_, _, procs) -> Alcotest.(check int) "allocation" 64 procs)
    moldable.Moldable_chain.segments

let test_adaptive_beats_fixed () =
  let p = sample_problem () in
  let moldable = Moldable_chain.solve p in
  let best_p, fixed = Moldable_chain.best_fixed_allocation p in
  Alcotest.(check bool)
    (Printf.sprintf
       "adaptive %.1f <= best fixed %.1f (at p=%d)"
       moldable.Moldable_chain.expected_makespan fixed.Chain_dp.expected_makespan best_p)
    true
    (moldable.Moldable_chain.expected_makespan
     <= fixed.Chain_dp.expected_makespan +. 1e-9)

let test_segments_partition_chain () =
  let p = sample_problem () in
  let moldable = Moldable_chain.solve p in
  let covered =
    List.concat_map
      (fun (first, last, _) -> List.init (last - first + 1) (fun k -> first + k))
      moldable.Moldable_chain.segments
  in
  Alcotest.(check (list int)) "segments cover the chain in order" [ 0; 1; 2; 3 ] covered

let test_amdahl_task_prefers_fewer_processors () =
  (* A strongly sequential task should not be allocated the whole
     machine when failures are the dominant cost: check the DP uses a
     smaller allocation for it than for the perfectly parallel task. *)
  let p =
    Moldable_chain.problem ~downtime:1.0 ~max_processors:1024 ~proc_rate:1e-4
      [ mk 50_000.0; mk ~workload:(Moldable.Amdahl 0.2) 50_000.0 ]
  in
  let solution = Moldable_chain.solve p in
  match solution.Moldable_chain.segments with
  | [ (0, 0, p_parallel); (1, 1, p_sequential) ] ->
      Alcotest.(check bool)
        (Printf.sprintf "parallel task gets %d >= sequential task's %d" p_parallel
           p_sequential)
        true
        (p_parallel >= p_sequential)
  | segments ->
      (* The DP may merge them; in that case just check feasibility. *)
      Alcotest.(check bool) "segments non-empty" true (segments <> [])

let test_chain_at_structure () =
  let p = sample_problem () in
  let chain = Moldable_chain.chain_at p ~processors:16 in
  Alcotest.(check int) "chain size" 4 (Ckpt_core.Chain_problem.size chain);
  close "lambda scales" (16.0 *. 1e-5) chain.Ckpt_core.Chain_problem.lambda;
  (* Work of task 0 at p=16: 4000/16. *)
  close "work scaled" 250.0 chain.Ckpt_core.Chain_problem.tasks.(0).Ckpt_dag.Task.work

let test_parallel_solve_bit_identical () =
  (* The chunked domain-parallel sweep must return exactly the
     sequential answer — makespan bit-for-bit AND the same segment
     list — for any domain count, because chunk boundaries are fixed
     on an absolute grid and merged in order. *)
  let problems =
    [ sample_problem ();
      Moldable_chain.problem ~downtime:0.5 ~max_processors:64 ~proc_rate:5e-5
        (List.init 37 (fun i ->
             let workload =
               match i mod 3 with
               | 0 -> Moldable.Perfectly_parallel
               | 1 -> Moldable.Amdahl 0.02
               | _ -> Moldable.Numerical_kernel 0.1
             in
             mk ~workload (1000.0 +. (137.0 *. float_of_int i)))) ]
  in
  List.iter
    (fun p ->
      let reference = Moldable_chain.solve p in
      List.iter
        (fun domains ->
          let par = Moldable_chain.solve ~domains p in
          Alcotest.(check bool)
            (Printf.sprintf "domains=%d: makespan bit-for-bit" domains)
            true
            (Float.equal reference.Moldable_chain.expected_makespan
               par.Moldable_chain.expected_makespan);
          Alcotest.(check (list (triple int int int)))
            (Printf.sprintf "domains=%d: same segments" domains)
            reference.Moldable_chain.segments par.Moldable_chain.segments)
        [ 1; 2; 4; 8 ])
    problems

let qcheck_moldable_at_least_as_good_as_every_fixed =
  QCheck.Test.make ~name:"adaptive allocation dominates every fixed allocation" ~count:25
    QCheck.(pair (list_of_size (Gen.int_range 1 5) (float_range 1000.0 20000.0))
              (int_range 0 1000))
    (fun (works, salt) ->
      let tasks =
        List.mapi
          (fun i w ->
            let workload =
              match (i + salt) mod 3 with
              | 0 -> Moldable.Perfectly_parallel
              | 1 -> Moldable.Amdahl 0.02
              | _ -> Moldable.Numerical_kernel 0.1
            in
            mk ~workload w)
          works
      in
      let p =
        Moldable_chain.problem ~downtime:0.5 ~max_processors:64 ~proc_rate:5e-5 tasks
      in
      let adaptive = (Moldable_chain.solve p).Moldable_chain.expected_makespan in
      List.for_all
        (fun procs ->
          adaptive
          <= (Moldable_chain.solve_fixed_allocation p ~processors:procs)
               .Chain_dp.expected_makespan
             +. 1e-9)
        p.Moldable_chain.candidates)

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "default candidates" `Quick test_candidates_default;
    Alcotest.test_case "single allocation = chain DP" `Quick
      test_single_allocation_equals_chain_dp;
    Alcotest.test_case "adaptive beats fixed" `Quick test_adaptive_beats_fixed;
    Alcotest.test_case "segments partition" `Quick test_segments_partition_chain;
    Alcotest.test_case "amdahl prefers fewer processors" `Quick
      test_amdahl_task_prefers_fewer_processors;
    Alcotest.test_case "chain_at structure" `Quick test_chain_at_structure;
    Alcotest.test_case "parallel solve bit-identical" `Quick
      test_parallel_solve_bit_identical;
    QCheck_alcotest.to_alcotest qcheck_moldable_at_least_as_good_as_every_fixed;
  ]

(* Tests for the discrete-event simulator: deterministic scripted-failure
   scenarios with hand-computed makespans, equivalence between the two
   executors, and Monte-Carlo agreement with Proposition 1. *)

module Sim_run = Ckpt_sim.Sim_run
module Monte_carlo = Ckpt_sim.Monte_carlo
module Failure_stream = Ckpt_failures.Failure_stream
module Task = Ckpt_dag.Task
module Rng = Ckpt_prng.Rng

let close ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: |%.12g - %.12g| < %g" name expected actual tol)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

let run_with_failures ?(downtime = 0.5) segments failure_times =
  let stream = Failure_stream.of_times (Array.of_list failure_times) in
  Sim_run.run_segments ~downtime ~next_failure:(Failure_stream.next_after stream) segments

let seg = Sim_run.segment

let test_no_failure () =
  let segments = [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0;
                   seg ~work:5.0 ~checkpoint:0.5 ~recovery:1.0 ] in
  close "failure-free makespan is sum of work+checkpoints" 16.5
    (run_with_failures segments [])

let test_failure_during_work () =
  (* w=10 c=1 r=2 D=0.5; failure at t=4:
     downtime 4 -> 4.5, recovery 4.5 -> 6.5, re-run 6.5 + 11 = 17.5. *)
  let segments = [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0 ] in
  close "single mid-work failure" 17.5 (run_with_failures segments [ 4.0 ])

let test_failure_during_checkpoint () =
  (* Failure at t = 10.5, inside the checkpoint: same rollback as work.
     10.5 -> down 11.0 -> recovered 13.0 -> +11 = 24.0. *)
  let segments = [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0 ] in
  close "failure during checkpoint" 24.0 (run_with_failures segments [ 10.5 ])

let test_failure_during_recovery () =
  (* Failure at 4, downtime to 4.5, recovery would end 6.5 but a second
     failure strikes at 5.0: downtime to 5.5, recovery 5.5 -> 7.5,
     re-run 7.5 + 11 = 18.5. *)
  let segments = [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0 ] in
  close "failure during recovery" 18.5 (run_with_failures segments [ 4.0; 5.0 ])

let test_failure_during_downtime_ignored () =
  (* Second failure at 4.2 lands inside the downtime window (4, 4.5]:
     the paper's model says failures cannot strike during downtime, so
     it is absorbed. 4.5 -> 6.5 recovery -> 17.5. *)
  let segments = [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0 ] in
  close "failure during downtime absorbed" 17.5 (run_with_failures segments [ 4.0; 4.2 ])

let test_multi_segment_rollback_scope () =
  (* Two segments; failure in the second rolls back only the second. *)
  let segments = [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0;
                   seg ~work:5.0 ~checkpoint:0.5 ~recovery:3.0 ] in
  (* Segment 1 finishes at 11. Failure at 13 (inside segment 2):
     down to 13.5, recovery (R of segment-2 start = 3) to 16.5,
     re-run 5.5 -> 22.0. *)
  close "rollback limited to current segment" 22.0 (run_with_failures segments [ 13.0 ])

let test_boundary_failure_counts_as_success () =
  (* A failure exactly at the completion instant does not interrupt. *)
  let segments = [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0 ] in
  close "boundary failure" 11.0 (run_with_failures segments [ 11.0 ])

let test_zero_downtime () =
  let segments = [ seg ~work:4.0 ~checkpoint:0.0 ~recovery:1.0 ] in
  let stream = Failure_stream.of_times [| 2.0 |] in
  let makespan =
    Sim_run.run_segments ~downtime:0.0 ~next_failure:(Failure_stream.next_after stream)
      segments
  in
  (* fail at 2 -> recovery 2 -> 3 -> re-run 3 + 4 = 7. *)
  close "zero downtime" 7.0 makespan

let chain_tasks works cs rs =
  Array.of_list
    (List.mapi
       (fun i ((w, c), r) -> Task.make ~id:i ~work:w ~checkpoint_cost:c ~recovery_cost:r ())
       (List.combine (List.combine works cs) rs))

let test_chain_policy_matches_segments () =
  (* Static placement: the two executors must agree exactly on any
     replayed trace. *)
  let tasks = chain_tasks [ 3.0; 4.0; 2.0; 5.0 ] [ 0.5; 0.4; 0.3; 0.2 ] [ 1.0; 1.1; 1.2; 1.3 ] in
  let placement = [| false; true; false; true |] in
  let failure_times = [ 2.0; 6.0; 9.5; 14.0; 15.0 ] in
  let downtime = 0.25 in
  let initial_recovery = 0.7 in
  (* Build equivalent segments: tasks 0-1 (ckpt C=0.4, recovery R0), tasks 2-3. *)
  let segments =
    [ seg ~work:7.0 ~checkpoint:0.4 ~recovery:initial_recovery;
      seg ~work:7.0 ~checkpoint:0.2 ~recovery:1.1 ]
  in
  let run_seg =
    let stream = Failure_stream.of_times (Array.of_list failure_times) in
    Sim_run.run_segments ~downtime ~next_failure:(Failure_stream.next_after stream) segments
  in
  let run_pol =
    let stream = Failure_stream.of_times (Array.of_list failure_times) in
    Sim_run.run_chain_policy ~initial_recovery ~downtime
      ~decide:(fun ctx -> placement.(ctx.Sim_run.task_index))
      ~next_failure:(Failure_stream.next_after stream)
      tasks
  in
  close "policy executor equals segment executor" run_seg run_pol

let qcheck_policy_equals_segments =
  (* Randomised version of the same equivalence. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 6 in
      let* works = list_size (return n) (float_range 0.5 5.0) in
      let* cs = list_size (return n) (float_range 0.0 1.0) in
      let* rs = list_size (return n) (float_range 0.0 2.0) in
      let* mask = int_range 0 ((1 lsl n) - 1) in
      let* failures = list_size (int_range 0 12) (float_range 0.1 40.0) in
      let* downtime = float_range 0.0 1.0 in
      return (works, cs, rs, mask, List.sort compare failures, downtime))
  in
  QCheck.Test.make ~name:"chain-policy executor equals segment executor" ~count:300
    (QCheck.make gen) (fun (works, cs, rs, mask, failures, downtime) ->
      let n = List.length works in
      let tasks = chain_tasks works cs rs in
      let placement = Array.init n (fun i -> i = n - 1 || mask land (1 lsl i) <> 0) in
      let initial_recovery = 0.5 in
      (* Segments from the placement. *)
      let segments =
        let rec build acc first i =
          if i = n then List.rev acc
          else if placement.(i) then begin
            let work = ref 0.0 in
            for k = first to i do
              work := !work +. tasks.(k).Task.work
            done;
            let recovery =
              if first = 0 then initial_recovery else tasks.(first - 1).Task.recovery_cost
            in
            build
              (seg ~work:!work ~checkpoint:tasks.(i).Task.checkpoint_cost ~recovery :: acc)
              (i + 1) (i + 1)
          end
          else build acc first (i + 1)
        in
        build [] 0 0
      in
      let failures = Array.of_list failures in
      let a =
        let stream = Failure_stream.of_times failures in
        Sim_run.run_segments ~downtime ~next_failure:(Failure_stream.next_after stream)
          segments
      in
      let b =
        let stream = Failure_stream.of_times failures in
        Sim_run.run_chain_policy ~initial_recovery ~downtime
          ~decide:(fun ctx -> placement.(ctx.Sim_run.task_index))
          ~next_failure:(Failure_stream.next_after stream)
          tasks
      in
      Float.abs (a -. b) < 1e-9)

let test_context_fields () =
  (* Check the policy sees sensible context values on a scripted run. *)
  let tasks = chain_tasks [ 3.0; 4.0; 2.0 ] [ 0.5; 0.5; 0.5 ] [ 1.0; 1.0; 1.0 ] in
  let contexts = ref [] in
  let stream = Failure_stream.of_times [| 4.0 |] in
  let _ =
    Sim_run.run_chain_policy ~initial_recovery:0.0 ~downtime:0.0
      ~decide:(fun ctx ->
        contexts := ctx :: !contexts;
        true)
      ~next_failure:(Failure_stream.next_after stream)
      tasks
  in
  (* Execution: T0 done at 3 (ckpt -> 3.5), T1 would finish 7.5 but fails
     at 4: downtime 0, recovery from T0 (R=1) 4 -> 5, T1 re-runs 5 -> 9.
     The final task's checkpoint is forced, so [decide] is consulted for
     T0 (at t=3, no failure yet) and T1 (at t=9) only. *)
  match List.rev !contexts with
  | [ c0; c1 ] ->
      Alcotest.(check int) "first decision task" 0 c0.Sim_run.task_index;
      Alcotest.(check int) "no checkpoint yet" (-1) c0.Sim_run.last_checkpoint;
      close "first decision time" 3.0 c0.Sim_run.now;
      close "work since ckpt" 3.0 c0.Sim_run.work_since_checkpoint;
      close "since failure = now (no failure yet)" 3.0 c0.Sim_run.since_last_failure;
      Alcotest.(check int) "second decision task" 1 c1.Sim_run.task_index;
      Alcotest.(check int) "last checkpoint is T0" 0 c1.Sim_run.last_checkpoint;
      close "second decision time" 9.0 c1.Sim_run.now;
      close "since failure" 5.0 c1.Sim_run.since_last_failure;
      close "work since ckpt" 4.0 c1.Sim_run.work_since_checkpoint
  | contexts ->
      Alcotest.fail (Printf.sprintf "expected 2 decisions, saw %d" (List.length contexts))

let test_failure_count_matches_formula () =
  (* E(failures) = (e^(lambda(W+C)) - 1) e^(lambda R): validate by
     simulation through run_segments_stats. *)
  let lambda = 0.06 and work = 8.0 and checkpoint = 1.0 and downtime = 0.3 and recovery = 2.0 in
  let exact =
    Ckpt_core.Expected_time.expected_failures
      (Ckpt_core.Expected_time.make ~downtime ~recovery ~work ~checkpoint ~lambda ())
  in
  let rng = Rng.create ~seed:778L in
  let acc = Ckpt_stats.Welford.create () in
  for run = 0 to 149_999 do
    let stream =
      Failure_stream.poisson ~rate:lambda (Rng.substream rng (string_of_int run))
    in
    let stats =
      Sim_run.run_segments_stats ~downtime
        ~next_failure:(Failure_stream.next_after stream)
        [ seg ~work ~checkpoint ~recovery ]
    in
    Ckpt_stats.Welford.add acc (float_of_int stats.Sim_run.failures)
  done;
  (* 99.9% interval: the test must not flake on an unlucky seed. *)
  let lo, hi = Ckpt_stats.Welford.confidence_interval acc ~level:0.999 in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.4f in CI [%.4f, %.4f]" exact lo hi)
    true
    (lo <= exact && exact <= hi)

let test_stats_consistency () =
  (* run_segments and run_segments_stats agree on the makespan. *)
  let segments = [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0 ] in
  let a = run_with_failures segments [ 4.0; 5.0 ] in
  let stream = Failure_stream.of_times [| 4.0; 5.0 |] in
  let stats =
    Sim_run.run_segments_stats ~downtime:0.5
      ~next_failure:(Failure_stream.next_after stream)
      segments
  in
  close "same makespan" a stats.Sim_run.makespan;
  Alcotest.(check int) "both failures counted" 2 stats.Sim_run.failures

let test_traced_events () =
  (* Scripted scenario: w=10 c=1 r=2 D=0.5, failure at 4.
     Expected log: work [0,4) interrupted; downtime [4,4.5); recovery
     [4.5,6.5); work [6.5,16.5); checkpoint [16.5,17.5). *)
  let stream = Failure_stream.of_times [| 4.0 |] in
  let stats, events =
    Sim_run.run_segments_traced ~downtime:0.5
      ~next_failure:(Failure_stream.next_after stream)
      [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0 ]
  in
  close "traced makespan" 17.5 stats.Sim_run.makespan;
  Alcotest.(check int) "traced failures" 1 stats.Sim_run.failures;
  let expect = [
    (Sim_run.Work_phase, 0.0, 4.0, true);
    (Sim_run.Downtime_phase, 4.0, 4.5, false);
    (Sim_run.Recovery_phase, 4.5, 6.5, false);
    (Sim_run.Work_phase, 6.5, 16.5, false);
    (Sim_run.Checkpoint_phase, 16.5, 17.5, false);
  ] in
  Alcotest.(check int) "event count" (List.length expect) (List.length events);
  List.iter2
    (fun (phase, start, finish, interrupted) (e : Sim_run.event) ->
      Alcotest.(check bool) "phase" true (e.Sim_run.phase = phase);
      close "start" start e.Sim_run.start;
      close "finish" finish e.Sim_run.finish;
      Alcotest.(check bool) "interrupted flag" interrupted e.Sim_run.interrupted)
    expect events

let test_traced_consistency_with_plain () =
  (* The traced runner must produce the same makespan/failures as the
     plain one, and its events must tile the timeline without gaps. *)
  let segments = [ seg ~work:5.0 ~checkpoint:0.5 ~recovery:1.0;
                   seg ~work:3.0 ~checkpoint:0.2 ~recovery:0.8 ] in
  let failures = [| 2.0; 6.5; 7.0; 8.9 |] in
  let plain =
    let stream = Failure_stream.of_times failures in
    Sim_run.run_segments_stats ~downtime:0.3
      ~next_failure:(Failure_stream.next_after stream) segments
  in
  let traced, events =
    let stream = Failure_stream.of_times failures in
    Sim_run.run_segments_traced ~downtime:0.3
      ~next_failure:(Failure_stream.next_after stream) segments
  in
  close "same makespan" plain.Sim_run.makespan traced.Sim_run.makespan;
  Alcotest.(check int) "same failures" plain.Sim_run.failures traced.Sim_run.failures;
  let rec check_tiling previous_end events =
    match events with
    | [] -> close "events end at the makespan" traced.Sim_run.makespan previous_end
    | (e : Sim_run.event) :: rest ->
        close "no gap" previous_end e.Sim_run.start;
        Alcotest.(check bool) "non-negative span" true (e.Sim_run.finish >= e.Sim_run.start);
        check_tiling e.Sim_run.finish rest
  in
  check_tiling 0.0 events;
  (* Rendering sanity. *)
  let rendered = Ckpt_sim.Timeline.render ~width:60 events in
  Alcotest.(check bool) "render has legend" true
    (Astring_like.contains rendered "legend");
  Alcotest.(check bool) "summary mentions recovery" true
    (Astring_like.contains (Ckpt_sim.Timeline.summary events) "recovery")

let test_monte_carlo_matches_prop1 () =
  let lambda = 0.08 and work = 7.0 and checkpoint = 0.8 and downtime = 0.4 and recovery = 1.5 in
  let exact =
    Ckpt_core.Expected_time.expected_v ~work ~checkpoint ~downtime ~recovery ~lambda
  in
  let rng = Rng.create ~seed:909L in
  let estimate =
    Monte_carlo.estimate_segments ~model:(Monte_carlo.Poisson_rate lambda) ~downtime
      ~runs:100_000 ~rng
      [ seg ~work ~checkpoint ~recovery ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "closed form %.4f inside simulated CI [%f, %f]" exact
       (fst estimate.Monte_carlo.ci99) (snd estimate.Monte_carlo.ci99))
    true
    (Monte_carlo.contains estimate.Monte_carlo.ci99 exact)

let test_parallel_monte_carlo_agrees () =
  let segments = [ seg ~work:7.0 ~checkpoint:0.7 ~recovery:1.2 ] in
  let sequential =
    Monte_carlo.estimate_segments ~model:(Monte_carlo.Poisson_rate 0.08) ~downtime:0.4
      ~runs:20_000 ~rng:(Rng.create ~seed:4242L) segments
  in
  let parallel =
    Monte_carlo.estimate_segments_parallel ~domains:4
      ~model:(Monte_carlo.Poisson_rate 0.08) ~downtime:0.4 ~runs:20_000
      ~rng:(Rng.create ~seed:4242L) segments
  in
  (* Identical sample sets; only merge order differs. *)
  close ~tol:1e-9 "same mean" sequential.Monte_carlo.mean parallel.Monte_carlo.mean;
  close ~tol:1e-6 "same stddev" sequential.Monte_carlo.stddev parallel.Monte_carlo.stddev;
  close "same min" sequential.Monte_carlo.min parallel.Monte_carlo.min;
  close "same max" sequential.Monte_carlo.max parallel.Monte_carlo.max

let test_monte_carlo_reproducible () =
  let rng1 = Rng.create ~seed:31337L and rng2 = Rng.create ~seed:31337L in
  let segments = [ seg ~work:5.0 ~checkpoint:0.5 ~recovery:1.0 ] in
  let e1 =
    Monte_carlo.estimate_segments ~model:(Monte_carlo.Poisson_rate 0.1) ~downtime:0.2
      ~runs:2000 ~rng:rng1 segments
  in
  let e2 =
    Monte_carlo.estimate_segments ~model:(Monte_carlo.Poisson_rate 0.1) ~downtime:0.2
      ~runs:2000 ~rng:rng2 segments
  in
  close "same seed, same estimate" e1.Monte_carlo.mean e2.Monte_carlo.mean

let test_run_on_trace () =
  let trace =
    Ckpt_failures.Trace.of_times ~horizon:100.0 [| 4.0 |]
  in
  let makespan =
    Monte_carlo.run_segments_on_trace ~downtime:0.5 ~trace
      [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0 ]
  in
  close "trace-driven run" 17.5 makespan

let test_livelock_guard () =
  (* Deterministic failures every 1.0 with a 2.0 recovery: the work can
     never complete; the guard must fire instead of spinning forever. *)
  let rng = Rng.create ~seed:1L in
  let stream =
    Ckpt_failures.Failure_stream.renewal ~law:(Ckpt_dist.Law.deterministic 1.0)
      ~processors:1 rng
  in
  let segments = [ seg ~work:5.0 ~checkpoint:0.0 ~recovery:2.0 ] in
  match
    Sim_run.run_segments ~max_failures:1000 ~downtime:0.0
      ~next_failure:(Ckpt_failures.Failure_stream.next_after stream)
      segments
  with
  | exception Sim_run.Livelock n -> Alcotest.(check bool) "counted" true (n > 1000)
  | makespan -> Alcotest.fail (Printf.sprintf "expected livelock, finished at %g" makespan)

let test_collect_distribution () =
  let rng = Rng.create ~seed:808L in
  let d =
    Monte_carlo.collect_segments ~model:(Monte_carlo.Poisson_rate 0.05) ~downtime:0.5
      ~runs:5000 ~rng
      [ seg ~work:10.0 ~checkpoint:1.0 ~recovery:2.0 ]
  in
  Alcotest.(check int) "all samples kept" 5000 (Array.length d.Monte_carlo.samples);
  (* Sorted. *)
  Array.iteri
    (fun i x ->
      if i > 0 then
        Alcotest.(check bool) "sorted" true (x >= d.Monte_carlo.samples.(i - 1)))
    d.Monte_carlo.samples;
  (* Quantiles bracket the mean; the minimum is the failure-free time. *)
  close "min is the failure-free run" 11.0 d.Monte_carlo.samples.(0);
  let median = Monte_carlo.quantile d 0.5 in
  let p99 = Monte_carlo.quantile d 0.99 in
  Alcotest.(check bool) "median < mean < p99 (right-skewed)" true
    (median < d.Monte_carlo.estimate.Monte_carlo.mean
     && d.Monte_carlo.estimate.Monte_carlo.mean < p99);
  (* The estimate matches the sample array. *)
  close ~tol:1e-9 "estimate mean = array mean"
    (Ckpt_stats.Descriptive.mean d.Monte_carlo.samples)
    d.Monte_carlo.estimate.Monte_carlo.mean

module Metrics = Ckpt_obs.Metrics

let sum_metric name =
  match Metrics.find (Metrics.snapshot ()) name with
  | Some (_, Metrics.Sum s) -> s
  | Some _ -> Alcotest.failf "metric %S is not a sum" name
  | None -> Alcotest.failf "metric %S not registered" name

(* Lost-work vs lost-time attribution, scripted (hand-computed):
   sim.lost_work counts only productive work to re-execute; sim.lost_time
   counts the wall clock wiped out in interrupted windows. *)
let test_lost_accounting_segments () =
  let segments = [ seg ~work:10.0 ~checkpoint:5.0 ~recovery:1.0 ] in
  (* Failure at 12, inside the checkpoint (work done at 10): the whole
     segment work (10) is lost work; the elapsed 12 since the attempt
     started is lost time. Then D=1 to 13, recovery to 14, rerun
     14 + 15 = 29. *)
  Metrics.reset ();
  close "makespan" 29.0 (run_with_failures ~downtime:1.0 segments [ 12.0 ]);
  close "checkpoint failure loses the segment work" 10.0 (sum_metric "sim.lost_work");
  close "and the full elapsed window as time" 12.0 (sum_metric "sim.lost_time");
  (* Failure at 4, inside work: 4 units lost, both as work and time; a
     second failure at 5.4, inside the recovery window (4.5, 5.5), adds
     its elapsed 0.9 to lost time only. Timeline: down 5.4 -> 5.9,
     recovery -> 6.9, work -> 16.9, checkpoint -> 21.9. *)
  Metrics.reset ();
  close "makespan (work + recovery failure)" 21.9
    (run_with_failures ~downtime:0.5 segments [ 4.0; 5.4 ]);
  close "work-phase loss is the elapsed work" 4.0 (sum_metric "sim.lost_work");
  close "recovery loss is time, not work" 4.9 (sum_metric "sim.lost_time")

let test_lost_accounting_chain () =
  let tasks =
    Array.init 2 (fun i ->
        Task.make ~id:i ~work:10.0 ~checkpoint_cost:2.0 ~recovery_cost:1.0 ())
  in
  (* Always-checkpoint policy; failure at 11 inside task 0's checkpoint:
     lost work = accumulated work (10), lost time = 10 + elapsed
     checkpoint (1) = 11. Timeline: down 11 -> 12, initial recovery
     0.5 -> 12.5, task0 + C 12.5 -> 24.5, task1 + C 24.5 -> 36.5. *)
  Metrics.reset ();
  let stream = Failure_stream.of_times [| 11.0 |] in
  let stats =
    Sim_run.run_chain_policy_stats ~initial_recovery:0.5 ~downtime:1.0
      ~decide:(fun _ -> true)
      ~next_failure:(Failure_stream.next_after stream)
      tasks
  in
  close "chain makespan" 36.5 stats.Sim_run.makespan;
  Alcotest.(check int) "one failure" 1 stats.Sim_run.failures;
  close "chain checkpoint failure loses work only" 10.0 (sum_metric "sim.lost_work");
  close "chain lost time includes checkpoint elapsed" 11.0 (sum_metric "sim.lost_time")

let test_degenerate_segments_terminate () =
  (* Zero-length phases make no failure queries at all, so degenerate
     segments terminate under every stream type — even one failing
     "now" forever from a replay trace's perspective. *)
  let degenerate =
    [ seg ~work:0.0 ~checkpoint:0.0 ~recovery:0.0;
      seg ~work:0.0 ~checkpoint:1.0 ~recovery:0.5;
      seg ~work:10.0 ~checkpoint:0.0 ~recovery:2.0;
      seg ~work:0.0 ~checkpoint:0.0 ~recovery:0.0 ]
  in
  let streams =
    [
      ("replay", Failure_stream.of_times [| 0.5; 0.6; 0.7 |]);
      ("poisson", Failure_stream.poisson ~rate:0.5 (Rng.create ~seed:3L));
      ( "renewal",
        Failure_stream.renewal
          ~law:(Ckpt_dist.Law.weibull ~shape:0.7 ~scale:5.0)
          ~processors:4 (Rng.create ~seed:5L) );
    ]
  in
  List.iter
    (fun (name, stream) ->
      let stats =
        Sim_run.run_segments_stats ~max_failures:100_000 ~downtime:0.1
          ~next_failure:(Failure_stream.next_after stream)
          degenerate
      in
      Alcotest.(check bool)
        (name ^ ": degenerate segments terminate")
        true
        (stats.Sim_run.makespan >= 11.0))
    streams

let test_on_phase_hook_order () =
  (* The hook must fire once per phase about to execute, before its
     failure query, in chronological order. Scripted run: w=10 c=5 r=1
     D=1, failure at 12 (inside the checkpoint). *)
  let hooks = ref [] in
  let on_phase ph t = hooks := (ph, t) :: !hooks in
  let stream = Failure_stream.of_times [| 12.0 |] in
  ignore
    (Sim_run.run_segments_emitting ~emit:(fun _ -> ()) ~on_phase ~downtime:1.0
       ~next_failure:(Failure_stream.next_after stream)
       [ seg ~work:10.0 ~checkpoint:5.0 ~recovery:1.0 ]);
  let expected =
    [
      (Sim_run.Work_phase, 0.0); (Sim_run.Checkpoint_phase, 10.0);
      (Sim_run.Downtime_phase, 12.0); (Sim_run.Recovery_phase, 13.0);
      (Sim_run.Work_phase, 14.0); (Sim_run.Checkpoint_phase, 24.0);
    ]
  in
  Alcotest.(check int) "hook count" (List.length expected) (List.length !hooks);
  List.iter2
    (fun (ep, et) (ap, at) ->
      Alcotest.(check bool)
        (Printf.sprintf "phase at %g" et)
        true
        (ep = ap && Float.equal et at))
    expected (List.rev !hooks)

let test_chain_emits_events () =
  (* The chain executor's event log, scripted: 2 tasks (w=10 C=2 R=1),
     always checkpoint, initial recovery 0.5, D=1, failure at 11 inside
     task 0's checkpoint. Downtime/recovery carry the resume index 0. *)
  let tasks =
    Array.init 2 (fun i ->
        Task.make ~id:i ~work:10.0 ~checkpoint_cost:2.0 ~recovery_cost:1.0 ())
  in
  let events = ref [] in
  let stream = Failure_stream.of_times [| 11.0 |] in
  let stats =
    Sim_run.run_chain_policy_stats
      ~emit:(fun e -> events := e :: !events)
      ~initial_recovery:0.5 ~downtime:1.0
      ~decide:(fun _ -> true)
      ~next_failure:(Failure_stream.next_after stream)
      tasks
  in
  let expected =
    [
      { Sim_run.phase = Sim_run.Work_phase; segment = 0; start = 0.0; finish = 10.0;
        interrupted = false };
      { Sim_run.phase = Sim_run.Checkpoint_phase; segment = 0; start = 10.0;
        finish = 11.0; interrupted = true };
      { Sim_run.phase = Sim_run.Downtime_phase; segment = 0; start = 11.0; finish = 12.0;
        interrupted = false };
      { Sim_run.phase = Sim_run.Recovery_phase; segment = 0; start = 12.0; finish = 12.5;
        interrupted = false };
      { Sim_run.phase = Sim_run.Work_phase; segment = 0; start = 12.5; finish = 22.5;
        interrupted = false };
      { Sim_run.phase = Sim_run.Checkpoint_phase; segment = 0; start = 22.5;
        finish = 24.5; interrupted = false };
      { Sim_run.phase = Sim_run.Work_phase; segment = 1; start = 24.5; finish = 34.5;
        interrupted = false };
      { Sim_run.phase = Sim_run.Checkpoint_phase; segment = 1; start = 34.5;
        finish = 36.5; interrupted = false };
    ]
  in
  Alcotest.(check bool) "chain event log matches" true (List.rev !events = expected);
  close "stats makespan consistent" 36.5 stats.Sim_run.makespan;
  (* The stats wrapper and the plain makespan agree. *)
  let stream = Failure_stream.of_times [| 11.0 |] in
  close "run_chain_policy = stats.makespan" stats.Sim_run.makespan
    (Sim_run.run_chain_policy ~initial_recovery:0.5 ~downtime:1.0
       ~decide:(fun _ -> true)
       ~next_failure:(Failure_stream.next_after stream)
       tasks)

let test_nan_failure_time_rejected () =
  Alcotest.check_raises "NaN from the failure source is fatal"
    (Invalid_argument "Sim_run: next_failure returned NaN") (fun () ->
      ignore
        (Sim_run.run_segments ~downtime:0.5
           ~next_failure:(fun _ -> Float.nan)
           [ seg ~work:1.0 ~checkpoint:0.1 ~recovery:0.1 ]))

let suite =
  [
    Alcotest.test_case "failure-free run" `Quick test_no_failure;
    Alcotest.test_case "lost-work/lost-time split (segments)" `Quick
      test_lost_accounting_segments;
    Alcotest.test_case "lost-work/lost-time split (chain)" `Quick
      test_lost_accounting_chain;
    Alcotest.test_case "degenerate segments terminate" `Quick
      test_degenerate_segments_terminate;
    Alcotest.test_case "on_phase hook order" `Quick test_on_phase_hook_order;
    Alcotest.test_case "chain executor event log" `Quick test_chain_emits_events;
    Alcotest.test_case "NaN failure time rejected" `Quick test_nan_failure_time_rejected;
    Alcotest.test_case "livelock guard" `Quick test_livelock_guard;
    Alcotest.test_case "distribution collection" `Quick test_collect_distribution;
    Alcotest.test_case "failure during work" `Quick test_failure_during_work;
    Alcotest.test_case "failure during checkpoint" `Quick test_failure_during_checkpoint;
    Alcotest.test_case "failure during recovery" `Quick test_failure_during_recovery;
    Alcotest.test_case "failure during downtime ignored" `Quick
      test_failure_during_downtime_ignored;
    Alcotest.test_case "multi-segment rollback scope" `Quick test_multi_segment_rollback_scope;
    Alcotest.test_case "boundary failure" `Quick test_boundary_failure_counts_as_success;
    Alcotest.test_case "zero downtime" `Quick test_zero_downtime;
    Alcotest.test_case "policy executor = segment executor" `Quick
      test_chain_policy_matches_segments;
    QCheck_alcotest.to_alcotest qcheck_policy_equals_segments;
    Alcotest.test_case "policy context fields" `Quick test_context_fields;
    Alcotest.test_case "failure count matches formula" `Slow
      test_failure_count_matches_formula;
    Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
    Alcotest.test_case "traced events (scripted)" `Quick test_traced_events;
    Alcotest.test_case "traced run consistency" `Quick test_traced_consistency_with_plain;
    Alcotest.test_case "Monte-Carlo matches Prop 1" `Slow test_monte_carlo_matches_prop1;
    Alcotest.test_case "parallel = sequential Monte-Carlo" `Slow
      test_parallel_monte_carlo_agrees;
    Alcotest.test_case "Monte-Carlo reproducibility" `Quick test_monte_carlo_reproducible;
    Alcotest.test_case "trace-driven run" `Quick test_run_on_trace;
  ]

(* Fixture: unguarded-global-mutable — five findings: three bare
   top-level bindings, one annotation missing its reason string, and a
   function-local hash table. *)
type state = { mutable hits : int; total : int }

let registry = Hashtbl.create 16
let count = ref 0
let shared = { hits = 0; total = 0 }
let missing_reason = ref [] [@@lint.domain_safe]

let lookup tbl k =
  let memo = Hashtbl.create 8 in
  Hashtbl.add memo k tbl;
  Hashtbl.find memo k

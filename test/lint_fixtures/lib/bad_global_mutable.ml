(* Fixture: unguarded-global-mutable — six findings: four bare
   top-level bindings (one of them an off-heap bigarray scratch
   buffer), one annotation missing its reason string, and a
   function-local hash table. *)
type state = { mutable hits : int; total : int }

let registry = Hashtbl.create 16
let count = ref 0
let shared = { hits = 0; total = 0 }
let scratch = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 64
let missing_reason = ref [] [@@lint.domain_safe]

let lookup tbl k =
  let memo = Hashtbl.create 8 in
  Hashtbl.add memo k tbl;
  Hashtbl.find memo k

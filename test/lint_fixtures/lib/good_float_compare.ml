(* Fixture: float-polymorphic-compare — nothing here is flagged. *)
let eq x = Float.equal x 1.0
let cmp a = Float.compare (sqrt a) 2.0
let clamp x = Float.min x (1.0 /. x)
let int_ok a b = a = b && min a b > (0 : int)

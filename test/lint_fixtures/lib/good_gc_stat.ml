(* Fixture: no-direct-gc-stat — readings through the telemetry probe are
   fine, as are unrelated Gc calls (compact is not a stat read). *)
let probe = Ckpt_obs.Gc_telemetry.probe ()
let sample () = Ckpt_obs.Gc_telemetry.sample probe
let squeeze () = Gc.compact ()

(* Fixture: banned-in-lib — all four are flagged. *)
let coerce x = Obj.magic x
let die () = exit 1
let report n = Printf.printf "n=%d\n" n
let shout s = print_endline s

(* Fixture: banned-in-lib — all five are flagged. *)
let coerce x = Obj.magic x
let die () = exit 1
let report n = Printf.printf "n=%d\n" n
let shout s = print_endline s
let sock () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0

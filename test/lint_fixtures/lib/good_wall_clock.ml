(* Fixture: no-wall-clock — monotonic clock reads are fine. *)
let now_ns () = Ckpt_obs.Clock.now_ns ()
let timed f = Ckpt_obs.Clock.time f

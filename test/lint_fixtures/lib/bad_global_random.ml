(* Fixture: no-global-random — value uses and the module alias are flagged. *)
let draw () = Random.float 1.0
let seed () = Random.self_init ()

module R = Random.State

(* Fixture: unparseable input — the driver reports a parse-error
   diagnostic instead of crashing. *)
let = (

(* Fixture: span-scope-safety — the raw pair leaks the scope if [f]
   raises; both calls are flagged. *)
let step f =
  Ckpt_obs.Span.enter "step";
  let r = f () in
  Ckpt_obs.Span.exit ();
  r

(* Fixture: no-global-random — seeded streams are fine. *)
let draw rng = Ckpt_prng.Rng.uniform rng
let split rng = Ckpt_prng.Rng.split rng

(* Fixture: span-scope-safety — the exception-safe combinator. *)
let step f = Ckpt_obs.Span.with_ ~name:"step" f
let mark () = Ckpt_obs.Span.instant "mark"

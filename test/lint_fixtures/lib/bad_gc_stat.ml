(* Fixture: no-direct-gc-stat — both direct GC reads are flagged. *)
let words () = (Gc.quick_stat ()).Gc.minor_words
let heap () = (Stdlib.Gc.stat ()).Gc.heap_words

(* Fixture: float-polymorphic-compare — every comparison is flagged. *)
let eq x = x = 1.0
let cmp a = compare (sqrt a) 2.0
let clamp x = min x (1.0 /. x)

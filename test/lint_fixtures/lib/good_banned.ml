(* Fixture: banned-in-lib — formatter-based output and exceptions. *)
let report ppf n = Format.fprintf ppf "n=%d@." n
let fail msg = invalid_arg msg

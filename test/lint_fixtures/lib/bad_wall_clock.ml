(* Fixture: no-wall-clock — both reads are flagged. *)
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()

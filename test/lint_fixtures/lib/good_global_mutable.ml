(* Fixture: unguarded-global-mutable — nothing here is flagged: sync
   primitives are the fix, annotated bindings carry a reason, and local
   refs are idiomatic accumulators. *)
type state = { mutable hits : int; total : int }

let lock = Mutex.create ()
let registry = Hashtbl.create 16 [@@lint.domain_safe "mutex-held: all access under [lock]"]
let count = Atomic.make 0

let scratch =
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 64
[@@lint.domain_safe "init-before-spawn: filled once at startup, read-only after"]

let totals xs =
  let acc = ref 0.0 in
  List.iter (fun x -> acc := !acc +. x) xs;
  !acc

let scan items =
  let seen = Hashtbl.create 8 [@@lint.domain_safe "call-local; never escapes scan"] in
  Hashtbl.length seen + List.length items

(* Tests for the deterministic fault-scenario harness: registry
   reproducibility, monitors passing on the honest engine, and each
   monitor firing on a deliberately broken (mutant) event stream. *)

module Scenario = Ckpt_scenarios.Scenario
module Monitor = Ckpt_scenarios.Monitor
module Sim_run = Ckpt_sim.Sim_run

let test_registry_shape () =
  Alcotest.(check bool) "at least 6 scenarios" true (List.length Scenario.all >= 6);
  let names = Scenario.names () in
  Alcotest.(check int) "names are unique" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun n ->
      match Scenario.find n with
      | Some s -> Alcotest.(check string) "find round-trips" n s.Scenario.name
      | None -> Alcotest.failf "scenario %S not found by name" n)
    names;
  Alcotest.(check bool) "unknown name" true (Scenario.find "no-such-scenario" = None)

let test_reproducible_digests () =
  List.iter
    (fun s ->
      let o1 = Scenario.run s ~seed:123L in
      let o2 = Scenario.run s ~seed:123L in
      Alcotest.(check string)
        (s.Scenario.name ^ " digest reproduces")
        o1.Scenario.digest o2.Scenario.digest;
      Alcotest.(check bool)
        (s.Scenario.name ^ " event streams identical")
        true
        (o1.Scenario.events = o2.Scenario.events);
      Alcotest.(check bool)
        (s.Scenario.name ^ " stats identical")
        true
        (Float.equal o1.Scenario.stats.Sim_run.makespan o2.Scenario.stats.Sim_run.makespan
        && o1.Scenario.stats.Sim_run.failures = o2.Scenario.stats.Sim_run.failures))
    Scenario.all

(* Regression pin: the exact digests of two scenarios at a fixed seed.
   A change here means the engine's observable behaviour changed —
   deliberate changes must update the pins (and the bug-report
   reproduction contract with them). *)
let test_pinned_digests () =
  let expect name seed =
    match Scenario.find name with
    | None -> Alcotest.failf "scenario %S missing" name
    | Some s -> (Scenario.run s ~seed).Scenario.digest
  in
  Alcotest.(check string) "baseline-exp pinned" "a9e894e2b72a59447d69aab0a32f9192"
    (expect "baseline-exp" 7L);
  Alcotest.(check string) "chain-periodic-policy pinned"
    "28cadb6d4e1e6e0d61b0101253bea7aa"
    (expect "chain-periodic-policy" 7L);
  (* Cross-seed digests differ (the seed is part of the digested
     transcript, and so is the failure pattern). *)
  Alcotest.(check bool) "digests differ across seeds" true
    (not (String.equal (expect "baseline-exp" 7L) (expect "baseline-exp" 8L)))

let test_honest_engine_passes_monitors () =
  (* Every scenario, a sweep of seeds: the honest engine must never trip
     a monitor, whatever the fault pattern. *)
  List.iter
    (fun s ->
      for seed = 1 to 25 do
        let o = Scenario.run s ~seed:(Int64.of_int seed) in
        if not (Monitor.ok o.Scenario.verdicts) then begin
          List.iter
            (fun (v : Monitor.verdict) ->
              List.iter
                (fun (x : Monitor.violation) ->
                  Printf.eprintf "%s seed=%d t=%g %s: %s\n" s.Scenario.name seed x.time
                    x.monitor x.message)
                v.examples)
            o.Scenario.verdicts;
          Alcotest.failf "%s seed=%d: %d monitor violation(s)" s.Scenario.name seed
            (Monitor.total_violations o.Scenario.verdicts)
        end;
        Alcotest.(check int)
          (s.Scenario.name ^ " all five monitors report")
          5
          (List.length o.Scenario.verdicts)
      done)
    Scenario.all

let test_scenarios_see_failures () =
  (* The registry must actually exercise failure paths: over a seed
     sweep, every scenario endures at least one failure somewhere. *)
  List.iter
    (fun s ->
      let total = ref 0 in
      for seed = 1 to 25 do
        let o = Scenario.run s ~seed:(Int64.of_int seed) in
        total := !total + o.Scenario.stats.Sim_run.failures
      done;
      Alcotest.(check bool) (s.Scenario.name ^ " endures failures") true (!total > 0))
    Scenario.all

(* {1 Mutant streams: each monitor must fire on its broken input} *)

let spec =
  {
    Monitor.downtime = 1.0;
    lower_bound = 22.0;
    expected =
      (fun i ->
        if i >= 0 && i < 2 then Some (Sim_run.segment ~work:10.0 ~checkpoint:1.0 ~recovery:2.0)
        else None);
  }

let event phase segment start finish interrupted =
  { Sim_run.phase; segment; start; finish; interrupted }

let honest_events =
  [
    event Sim_run.Work_phase 0 0.0 10.0 false;
    event Sim_run.Checkpoint_phase 0 10.0 11.0 false;
    event Sim_run.Work_phase 1 11.0 21.0 false;
    event Sim_run.Checkpoint_phase 1 21.0 22.0 false;
  ]

let verdicts_of ?(makespan = 22.0) events =
  let m = Monitor.create spec in
  List.iter (Monitor.on_event m) events;
  Monitor.finalize m ~makespan

let violations_of name verdicts =
  match List.find_opt (fun (v : Monitor.verdict) -> String.equal v.monitor name) verdicts with
  | Some v -> v.Monitor.violations
  | None -> Alcotest.failf "monitor %S missing from verdicts" name

let test_honest_stream_clean () =
  let verdicts = verdicts_of honest_events in
  Alcotest.(check bool) "honest stream passes all monitors" true (Monitor.ok verdicts);
  Alcotest.(check int) "no violations" 0 (Monitor.total_violations verdicts)

let test_mutant_time_travel () =
  (* Second event starts before the first finished. *)
  let events =
    [
      event Sim_run.Work_phase 0 0.0 10.0 false;
      event Sim_run.Checkpoint_phase 0 9.0 10.0 false;
      event Sim_run.Work_phase 1 10.0 20.0 false;
      event Sim_run.Checkpoint_phase 1 20.0 22.0 false;
    ]
  in
  let verdicts = verdicts_of events in
  Alcotest.(check bool) "monotone-timeline fires" true
    (violations_of "monotone-timeline" verdicts > 0)

let test_mutant_backwards_event () =
  let events = [ event Sim_run.Work_phase 0 10.0 4.0 true ] in
  Alcotest.(check bool) "backwards event caught" true
    (violations_of "monotone-timeline" (verdicts_of ~makespan:10.0 events) > 0)

let test_mutant_nan_timestamp () =
  let events = [ event Sim_run.Work_phase 0 0.0 Float.nan true ] in
  Alcotest.(check bool) "NaN timestamp caught" true
    (violations_of "monotone-timeline" (verdicts_of ~makespan:22.0 events) > 0)

let test_mutant_lost_checkpoint () =
  (* Segment 0 commits, then the engine re-executes it: committed
     progress was lost. *)
  let events =
    [
      event Sim_run.Work_phase 0 0.0 10.0 false;
      event Sim_run.Checkpoint_phase 0 10.0 11.0 false;
      event Sim_run.Work_phase 0 11.0 21.0 false;
      event Sim_run.Checkpoint_phase 1 21.0 22.0 false;
    ]
  in
  Alcotest.(check bool) "committed-progress fires" true
    (violations_of "committed-progress" (verdicts_of honest_events) = 0
    && violations_of "committed-progress" (verdicts_of events) > 0)

let test_mutant_work_inflation () =
  (* Completed work phase runs longer than the declared work. *)
  let events =
    [
      event Sim_run.Work_phase 0 0.0 12.5 false;
      event Sim_run.Checkpoint_phase 0 12.5 13.5 false;
      event Sim_run.Work_phase 1 13.5 23.5 false;
      event Sim_run.Checkpoint_phase 1 23.5 24.5 false;
    ]
  in
  Alcotest.(check bool) "work-conservation fires" true
    (violations_of "work-conservation" (verdicts_of ~makespan:24.5 events) > 0)

let test_mutant_unfinished_work () =
  (* A segment starts (interrupted) but its work never completes before
     the run ends. *)
  let events =
    [
      event Sim_run.Work_phase 0 0.0 10.0 false;
      event Sim_run.Checkpoint_phase 0 10.0 11.0 false;
      event Sim_run.Work_phase 1 11.0 15.0 true;
    ]
  in
  Alcotest.(check bool) "unfinished work caught" true
    (violations_of "work-conservation" (verdicts_of ~makespan:15.0 events) > 0)

let test_mutant_short_makespan () =
  (* An engine reporting a makespan below the failure-free lower bound
     (it "lost" a checkpoint cost). *)
  let events =
    [
      event Sim_run.Work_phase 0 0.0 10.0 false;
      event Sim_run.Checkpoint_phase 0 10.0 11.0 false;
      event Sim_run.Work_phase 1 11.0 21.0 false;
    ]
  in
  Alcotest.(check bool) "makespan-bound fires" true
    (violations_of "makespan-bound" (verdicts_of ~makespan:21.0 events) > 0)

let test_mutant_interrupted_downtime () =
  let events =
    [
      event Sim_run.Work_phase 0 0.0 5.0 true;
      event Sim_run.Downtime_phase 0 5.0 5.4 true;
      event Sim_run.Recovery_phase 0 5.4 7.4 false;
      event Sim_run.Work_phase 0 7.4 17.4 false;
      event Sim_run.Checkpoint_phase 0 17.4 18.4 false;
      event Sim_run.Work_phase 1 18.4 28.4 false;
      event Sim_run.Checkpoint_phase 1 28.4 29.4 false;
    ]
  in
  let verdicts = verdicts_of ~makespan:29.4 events in
  Alcotest.(check bool) "downtime-immunity fires" true
    (violations_of "downtime-immunity" verdicts > 0);
  (* The truncated downtime window also breaks work-conservation. *)
  Alcotest.(check bool) "window length checked too" true
    (violations_of "work-conservation" verdicts > 0)

let test_monitor_verdict_bookkeeping () =
  (* An honest run including a failure cycle, so every monitor
     (downtime-immunity included) performs at least one check. *)
  let verdicts =
    verdicts_of ~makespan:30.0
      [
        event Sim_run.Work_phase 0 0.0 5.0 true;
        event Sim_run.Downtime_phase 0 5.0 6.0 false;
        event Sim_run.Recovery_phase 0 6.0 8.0 false;
        event Sim_run.Work_phase 0 8.0 18.0 false;
        event Sim_run.Checkpoint_phase 0 18.0 19.0 false;
        event Sim_run.Work_phase 1 19.0 29.0 false;
        event Sim_run.Checkpoint_phase 1 29.0 30.0 false;
      ]
  in
  Alcotest.(check bool) "honest failure cycle is clean" true (Monitor.ok verdicts);
  Alcotest.(check (list string)) "verdict order = monitor_names" Monitor.monitor_names
    (List.map (fun (v : Monitor.verdict) -> v.Monitor.monitor) verdicts);
  List.iter
    (fun (v : Monitor.verdict) ->
      Alcotest.(check bool) (v.Monitor.monitor ^ " performed checks") true
        (v.Monitor.checks > 0))
    verdicts

(* {1 Coverage counters} *)

let test_coverage_sweep_completes () =
  (* The acceptance bar: every registered cov.* branch (injector
     combinator arms, monitor outcomes) fires within the default seed
     budget — in practice within a couple of seeds. *)
  let o =
    Ckpt_scenarios.Coverage.sweep ~scenarios:Scenario.all ~seed:42L ()
  in
  if not (Ckpt_scenarios.Coverage.complete o) then
    Alcotest.failf "uncovered after %d seeds: %s" o.Ckpt_scenarios.Coverage.seeds_used
      (String.concat ", " o.Ckpt_scenarios.Coverage.uncovered);
  Alcotest.(check bool) "a real universe was measured" true
    (List.length o.Ckpt_scenarios.Coverage.covered >= 10);
  Alcotest.(check bool) "well within the default budget" true
    (o.Ckpt_scenarios.Coverage.seeds_used <= 8);
  (* Both injector-branch and monitor-outcome counters are present. *)
  let names = List.map fst o.Ckpt_scenarios.Coverage.covered in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " registered") true (List.mem expected names))
    [
      "cov.injector.merge.left"; "cov.injector.masked.masked";
      "cov.injector.aftershock.spawned"; "cov.injector.nhpp.accept";
      "cov.injector.phase.pending"; "cov.monitor.monotone-timeline.pass";
    ]
(* No assertion on .violation counters here: they register lazily on
   first fire, and the mutant-stream tests above deliberately fire them
   in this very process. The fresh-process guarantee — an honest run
   registers no .violation keys, so 100% stays reachable — is what
   `ckpt-sim --scenario all --coverage` exercises in CI. *)

let test_coverage_counters_deterministic () =
  (* cov.* counters are Engine-kind: a scenario replayed at the same
     seed must add exactly the same counts. *)
  let s =
    match Scenario.find "merged-phase-chain" with
    | Some s -> s
    | None -> Alcotest.fail "merged-phase-chain not registered"
  in
  let delta () =
    let before = Ckpt_scenarios.Coverage.counters () in
    ignore (Scenario.run s ~seed:99L);
    List.filter_map
      (fun (n, c) ->
        let b = match List.assoc_opt n before with Some b -> b | None -> 0 in
        if c - b > 0 then Some (n, c - b) else None)
      (Ckpt_scenarios.Coverage.counters ())
  in
  let d1 = delta () in
  let d2 = delta () in
  Alcotest.(check bool) "replay adds identical branch counts" true (d1 = d2);
  Alcotest.(check bool) "the merge scenario drives the merge combinator" true
    (List.mem_assoc "cov.injector.merge.left" d1
    || List.mem_assoc "cov.injector.merge.right" d1)

let test_spec_of_workload_chain_bound () =
  (* The chain lower bound counts every periodic checkpoint plus the
     forced final one. *)
  let tasks =
    Array.init 4 (fun i ->
        Ckpt_dag.Task.make ~id:i ~work:5.0 ~checkpoint_cost:1.0 ~recovery_cost:1.0 ())
  in
  let spec =
    Scenario.spec_of_workload
      (Scenario.Chain { tasks; initial_recovery = 0.5; downtime = 1.0; period = 2 })
  in
  (* work 4*5 + checkpoints after tasks 1 and 3 (the last is forced). *)
  Alcotest.(check (float 1e-9)) "chain lower bound" 22.0 spec.Monitor.lower_bound;
  (match spec.Monitor.expected 0 with
  | Some seg ->
      Alcotest.(check (float 1e-9)) "first recovery is initial" 0.5 seg.Sim_run.recovery
  | None -> Alcotest.fail "expected 0 missing");
  (match spec.Monitor.expected 2 with
  | Some seg ->
      Alcotest.(check (float 1e-9)) "later recovery from previous task" 1.0
        seg.Sim_run.recovery
  | None -> Alcotest.fail "expected 2 missing");
  Alcotest.(check bool) "out of range is None" true (spec.Monitor.expected 4 = None)

let suite =
  [
    Alcotest.test_case "registry shape" `Quick test_registry_shape;
    Alcotest.test_case "digests reproduce" `Quick test_reproducible_digests;
    Alcotest.test_case "digest seed sensitivity" `Quick test_pinned_digests;
    Alcotest.test_case "honest engine passes monitors" `Slow
      test_honest_engine_passes_monitors;
    Alcotest.test_case "scenarios endure failures" `Slow test_scenarios_see_failures;
    Alcotest.test_case "honest stream clean" `Quick test_honest_stream_clean;
    Alcotest.test_case "mutant: time travel" `Quick test_mutant_time_travel;
    Alcotest.test_case "mutant: backwards event" `Quick test_mutant_backwards_event;
    Alcotest.test_case "mutant: NaN timestamp" `Quick test_mutant_nan_timestamp;
    Alcotest.test_case "mutant: lost checkpoint" `Quick test_mutant_lost_checkpoint;
    Alcotest.test_case "mutant: work inflation" `Quick test_mutant_work_inflation;
    Alcotest.test_case "mutant: unfinished work" `Quick test_mutant_unfinished_work;
    Alcotest.test_case "mutant: short makespan" `Quick test_mutant_short_makespan;
    Alcotest.test_case "mutant: interrupted downtime" `Quick
      test_mutant_interrupted_downtime;
    Alcotest.test_case "verdict bookkeeping" `Quick test_monitor_verdict_bookkeeping;
    Alcotest.test_case "coverage sweep reaches 100%" `Quick test_coverage_sweep_completes;
    Alcotest.test_case "coverage counters deterministic" `Quick
      test_coverage_counters_deterministic;
    Alcotest.test_case "chain workload spec" `Quick test_spec_of_workload_chain_bound;
  ]
